//! The P-Sync pipeline schedule in virtual time.
//!
//! He et al.'s design admits one batched operation per *step*; an
//! operation occupies `depth` consecutive steps (one heap level per
//! step), and **every step ends in a device-wide synchronization** — a
//! kernel relaunch on real hardware, the cost the paper blames for
//! P-Sync's deficit. With `B` thread blocks, up to `B` in-flight
//! operations' stages execute concurrently within a step; the stage work
//! itself is one `SORT_SPLIT` plus the node transfer.
//!
//! Heap mutations are performed for real, in operation order, by the
//! block that owns the operation at its entry step (operations are
//! serialized by construction — op `i+1` enters one step after op `i`).
//! The virtual clock reflects the pipelined schedule.

use crate::seq_heap::SeqBatchHeap;
use gpu_sim::{launch, GpuConfig, SimReport};
use parking_lot::Mutex;
use pq_api::{Entry, KeyType, ValueType};
use primitives::PrimitiveCost;

/// What a phase does. P-Sync does not support mixing insertions and
/// deletions in one phase (paper footnote 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    Insert,
    Delete,
}

/// P-Sync launch parameters.
#[derive(Debug, Clone, Copy)]
pub struct PsyncConfig {
    pub gpu: GpuConfig,
    /// Batch (heap node) size.
    pub k: usize,
    /// Device-wide synchronization cost between pipeline stages — the
    /// kernel-relaunch latency. Default 8000 cycles ≈ 5.7 µs at 1.4 GHz,
    /// a conservative relaunch estimate.
    pub relaunch_cycles: u64,
}

impl PsyncConfig {
    pub fn new(gpu: GpuConfig, k: usize) -> Self {
        Self { gpu, k, relaunch_cycles: 8_000 }
    }
}

/// Result of one synchronized phase.
pub struct PsyncPhaseResult<K, V> {
    pub report: SimReport,
    /// Items produced by a delete phase (in op order), empty for inserts.
    pub deleted: Vec<Entry<K, V>>,
}

/// Run one synchronized phase of `ops` batched operations against
/// `heap`. For `PhaseKind::Insert`, `batches` supplies one batch per
/// op; for `PhaseKind::Delete`, each op deletes up to `k` items.
pub fn run_phase<K: KeyType, V: ValueType>(
    cfg: PsyncConfig,
    heap: &Mutex<SeqBatchHeap<K, V>>,
    kind: PhaseKind,
    batches: &[Vec<Entry<K, V>>],
    delete_ops: usize,
) -> PsyncPhaseResult<K, V> {
    let n_ops = match kind {
        PhaseKind::Insert => batches.len(),
        PhaseKind::Delete => delete_ops,
    };
    let k = cfg.k;
    // Pipeline length: enough levels for the final heap.
    let depth = {
        let h = heap.lock();
        let nodes_after = match kind {
            PhaseKind::Insert => h.len().div_ceil(k.max(1)) + n_ops + 1,
            PhaseKind::Delete => h.len().div_ceil(k.max(1)) + 1,
        };
        (usize::BITS - nodes_after.leading_zeros()) as usize + 1
    };
    let deleted: Mutex<Vec<Entry<K, V>>> = Mutex::new(Vec::new());
    // The persistent-kernel pipeline synchronizes all its blocks every
    // step, so only co-resident blocks participate (grid-sync rule).
    let mut gpu = cfg.gpu;
    gpu.num_blocks = gpu.num_blocks.min(gpu.resident_blocks()).max(1);
    let blocks = gpu.num_blocks;
    // Deo-Prasad pipelining admits a new operation every *other* step:
    // operations at adjacent levels would contend for the shared level
    // boundary, so even and odd levels alternate. Op `i` enters at step
    // `2 i` and works its stage `s` at step `2 i + s`.
    let total_steps = 2 * n_ops + depth;

    let (report, _) = launch(
        gpu,
        |sched| sched.create_barrier(gpu.num_blocks),
        |ctx, &barrier| {
            let me = ctx.block_id();
            for step in 0..total_steps {
                // Ops active this step: op i is at stage (step - 2i) if
                // 0 <= step - 2i < depth. Each op is owned by one block.
                let i_hi = (step / 2).min(n_ops.saturating_sub(1));
                let i_lo = (step.saturating_sub(depth - 1)).div_ceil(2);
                #[allow(clippy::needless_range_loop)] // i is a schedule index, not a batch iterator
                for i in i_lo..=i_hi {
                    if n_ops == 0 || i % blocks != me {
                        continue;
                    }
                    let stage = step - 2 * i;
                    if stage == 0 {
                        // Entry stage: perform the real heap mutation.
                        let mut h = heap.lock();
                        match kind {
                            PhaseKind::Insert => h.insert_batch(&batches[i]),
                            PhaseKind::Delete => {
                                let mut out = deleted.lock();
                                h.delete_min_batch(&mut out, k);
                            }
                        }
                    }
                    // Stage work: He et al. (following Deo & Prasad)
                    // re-sort the union of the two nodes meeting at a
                    // level — a 2k bitonic sort, not a merge — plus the
                    // node traffic.
                    ctx.charge(PrimitiveCost::GlobalRead { n: 2 * k });
                    ctx.charge(PrimitiveCost::Sort { n: 2 * k });
                    ctx.charge(PrimitiveCost::GlobalWrite { n: 2 * k });
                }
                // Device-wide synchronization: the kernel relaunch.
                ctx.worker().barrier_wait(barrier, cfg.relaunch_cycles);
            }
        },
    );

    PsyncPhaseResult { report, deleted: deleted.into_inner() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batches(n: usize, k: usize, seed: u64) -> Vec<Vec<Entry<u32, u32>>> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..k).map(|_| Entry::new(rng.gen_range(0..1u32 << 30), 0)).collect())
            .collect()
    }

    #[test]
    fn phase_results_match_sequential() {
        let k = 16;
        let cfg = PsyncConfig::new(GpuConfig::new(4, 128), k);
        let heap = Mutex::new(SeqBatchHeap::<u32, u32>::new(k));
        let ins = batches(20, k, 5);
        let r1 = run_phase(cfg, &heap, PhaseKind::Insert, &ins, 0);
        assert!(r1.report.makespan_cycles > 0);
        assert_eq!(heap.lock().len(), 20 * k);
        heap.lock().check_invariants();

        let r2 = run_phase(cfg, &heap, PhaseKind::Delete, &[], 20);
        assert_eq!(r2.deleted.len(), 20 * k);
        // Deletions come out in nondecreasing key order op over op
        // because each op takes the current k smallest.
        let keys: Vec<u32> = r2.deleted.iter().map(|e| e.key).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "pipeline deletes must drain in order");
        assert!(heap.lock().is_empty());
    }

    #[test]
    fn pipeline_overlaps_but_pays_barriers() {
        let k = 64;
        let mk = |blocks| {
            let cfg = PsyncConfig::new(GpuConfig::new(blocks, 128), k);
            let heap = Mutex::new(SeqBatchHeap::<u32, u32>::new(k));
            let ins = batches(32, k, 9);
            run_phase(cfg, &heap, PhaseKind::Insert, &ins, 0).report.makespan_cycles
        };
        let one = mk(1);
        let eight = mk(8);
        assert!(eight < one, "pipeline parallelism must help: {eight} !< {one}");
        // But even with ample blocks, the per-step barrier keeps a floor:
        // at least (ops + depth) relaunches.
        let cfg = PsyncConfig::new(GpuConfig::new(8, 128), k);
        assert!(eight >= 32 * cfg.relaunch_cycles, "barrier floor missing: {eight}");
    }

    #[test]
    fn empty_phase_is_cheap_and_sane() {
        let k = 8;
        let cfg = PsyncConfig::new(GpuConfig::new(2, 64), k);
        let heap = Mutex::new(SeqBatchHeap::<u32, u32>::new(k));
        let r = run_phase(cfg, &heap, PhaseKind::Delete, &[], 0);
        assert!(r.deleted.is_empty());
    }
}
