//! # bgpq-apps — the paper's real-world applications (§6.5)
//!
//! Both applications are generic over any [`pq_api::BatchPriorityQueue`],
//! so one driver runs BGPQ and every CPU baseline:
//!
//! * [`knapsack`] — branch-and-bound 0/1 knapsack: "all visited nodes in
//!   the search tree are stored in the priority queue … its two branches
//!   in the search tree may be inserted into the heap, depending on if
//!   it is pruned by a bound condition. A thread block in BGPQ always
//!   retrieves a full node from the priority queue for load balancing."
//! * [`astar`] — A* route planning on 2-D obstacle grids with
//!   8-direction movement and the Manhattan heuristic.
//!
//! Each module ships a sequential reference solver used by the tests to
//! validate the parallel results exactly.

pub mod astar;
pub mod knapsack;
pub mod sssp;

pub use astar::{solve_astar, solve_astar_sequential, AstarNode, AstarResult};
pub use knapsack::{
    solve_knapsack, solve_knapsack_budgeted, solve_knapsack_sequential, KsNode, KsResult,
};
pub use sssp::{solve_sssp, SsspNode, SsspResult};
