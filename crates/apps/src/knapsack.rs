//! Branch-and-bound 0/1 knapsack over a concurrent priority queue.
//!
//! Best-first search: the queue orders open search-tree nodes by their
//! Dantzig fractional **upper bound** (a max-order, encoded into the
//! min-queue as `u64::MAX - bound`). Each popped node branches on the
//! next item (take / skip), prunes children whose bound cannot beat the
//! incumbent, and pushes survivors back as a batch.
//!
//! Correctness does not depend on pop order — any pruned-complete
//! exploration finds the optimum — so the driver is safe for relaxed
//! queues (SprayList) too; strict queues just prune more.

use pq_api::{BatchPriorityQueue, Entry};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use workloads::KnapsackInstance;

/// A search-tree node: items `0..level` are decided, accumulating
/// `profit` and `weight`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KsNode {
    pub level: u32,
    pub profit: u64,
    pub weight: u64,
}

/// Encode a (max-order) bound as a min-queue key.
#[inline]
pub fn bound_to_key(bound: u64) -> u64 {
    u64::MAX - bound
}

/// Outcome of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KsResult {
    pub best_profit: u64,
    /// Search-tree nodes expanded (popped and processed).
    pub nodes_expanded: u64,
}

/// Solve `inst` with `threads` workers sharing queue `q`.
pub fn solve_knapsack<Q>(inst: &KnapsackInstance, q: &Q, threads: usize) -> KsResult
where
    Q: BatchPriorityQueue<u64, KsNode> + ?Sized,
{
    solve_knapsack_budgeted(inst, q, threads, None)
}

/// [`solve_knapsack`] with an optional expansion budget: when `budget`
/// nodes have been expanded the search stops early and reports the
/// incumbent (used by the bench harness to keep the paper's 2^200–2^1000
/// node search spaces to a fixed, queue-comparable amount of work; the
/// result is then a lower bound, not a certified optimum).
pub fn solve_knapsack_budgeted<Q>(
    inst: &KnapsackInstance,
    q: &Q,
    threads: usize,
    budget: Option<u64>,
) -> KsResult
where
    Q: BatchPriorityQueue<u64, KsNode> + ?Sized,
{
    let incumbent = AtomicU64::new(0);
    let outstanding = AtomicI64::new(1);
    let expanded = AtomicU64::new(0);
    let root = KsNode { level: 0, profit: 0, weight: 0 };
    let root_bound = inst.upper_bound(0, 0, 0);
    q.insert_batch(&[Entry::new(bound_to_key(root_bound), root)]);

    std::thread::scope(|s| {
        for _ in 0..threads.max(1) {
            s.spawn(|| {
                let k = q.batch_capacity();
                let mut out: Vec<Entry<u64, KsNode>> = Vec::with_capacity(k);
                let mut children: Vec<Entry<u64, KsNode>> = Vec::with_capacity(2 * k);
                loop {
                    if let Some(b) = budget {
                        if expanded.load(Ordering::Relaxed) >= b {
                            return;
                        }
                    }
                    out.clear();
                    let got = q.delete_min_batch(&mut out, k);
                    if got == 0 {
                        if outstanding.load(Ordering::Acquire) <= 0 {
                            return;
                        }
                        std::thread::yield_now();
                        continue;
                    }
                    children.clear();
                    let mut best = incumbent.load(Ordering::Relaxed);
                    for e in &out {
                        let node = e.value;
                        let bound = u64::MAX - e.key;
                        if bound <= best {
                            continue; // pruned: cannot beat the incumbent
                        }
                        if (node.level as usize) >= inst.items() {
                            continue;
                        }
                        let i = node.level as usize;
                        let (p, w) = (inst.profits[i], inst.weights[i]);
                        // Branch 1: take item i (if it fits).
                        if node.weight + w <= inst.capacity {
                            let taken = KsNode {
                                level: node.level + 1,
                                profit: node.profit + p,
                                weight: node.weight + w,
                            };
                            // A feasible partial solution is a candidate.
                            best = best.max(taken.profit);
                            let b = inst.upper_bound(i + 1, taken.profit, taken.weight);
                            if b > best {
                                children.push(Entry::new(bound_to_key(b), taken));
                            }
                        }
                        // Branch 2: skip item i.
                        let skipped = KsNode {
                            level: node.level + 1,
                            profit: node.profit,
                            weight: node.weight,
                        };
                        let b = inst.upper_bound(i + 1, skipped.profit, skipped.weight);
                        if b > best {
                            children.push(Entry::new(bound_to_key(b), skipped));
                        }
                    }
                    incumbent.fetch_max(best, Ordering::AcqRel);
                    expanded.fetch_add(got as u64, Ordering::Relaxed);
                    // Publish children before retiring the parents so
                    // `outstanding == 0` implies a drained search.
                    if !children.is_empty() {
                        outstanding.fetch_add(children.len() as i64, Ordering::AcqRel);
                        for chunk in children.chunks(k) {
                            q.insert_batch(chunk);
                        }
                    }
                    outstanding.fetch_sub(got as i64, Ordering::AcqRel);
                }
            });
        }
    });

    KsResult {
        best_profit: incumbent.load(Ordering::Acquire),
        nodes_expanded: expanded.load(Ordering::Relaxed),
    }
}

/// Sequential best-first reference solver (same algorithm, std heap).
pub fn solve_knapsack_sequential(inst: &KnapsackInstance) -> KsResult {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut open: BinaryHeap<Reverse<(u64, u32, u64, u64)>> = BinaryHeap::new();
    let mut best = 0u64;
    let mut expanded = 0u64;
    open.push(Reverse((bound_to_key(inst.upper_bound(0, 0, 0)), 0, 0, 0)));
    while let Some(Reverse((key, level, profit, weight))) = open.pop() {
        let bound = u64::MAX - key;
        if bound <= best || (level as usize) >= inst.items() {
            continue;
        }
        expanded += 1;
        let i = level as usize;
        let (p, w) = (inst.profits[i], inst.weights[i]);
        if weight + w <= inst.capacity {
            let (np, nw) = (profit + p, weight + w);
            best = best.max(np);
            let b = inst.upper_bound(i + 1, np, nw);
            if b > best {
                open.push(Reverse((bound_to_key(b), level + 1, np, nw)));
            }
        }
        let b = inst.upper_bound(i + 1, profit, weight);
        if b > best {
            open.push(Reverse((bound_to_key(b), level + 1, profit, weight)));
        }
    }
    KsResult { best_profit: best, nodes_expanded: expanded }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq::{BgpqOptions, CpuBgpq};
    use pq_api::ItemwiseBatch;
    use workloads::{Correlation, KnapsackSpec};

    fn small_instances() -> Vec<KnapsackInstance> {
        let mut v = Vec::new();
        for (n, c, s) in [
            (16, Correlation::Uncorrelated, 1u64),
            (20, Correlation::Weak, 2),
            (18, Correlation::Strong, 3),
            (24, Correlation::Uncorrelated, 4),
        ] {
            v.push(KnapsackInstance::generate(KnapsackSpec::new(n, c, s)));
        }
        v
    }

    #[test]
    fn sequential_matches_dp() {
        for inst in small_instances() {
            let opt = inst.optimum_dp();
            let got = solve_knapsack_sequential(&inst);
            assert_eq!(got.best_profit, opt, "instance {} items", inst.items());
        }
    }

    #[test]
    fn bgpq_parallel_matches_dp() {
        for inst in small_instances() {
            let q: CpuBgpq<u64, KsNode> = CpuBgpq::new(BgpqOptions {
                node_capacity: 8,
                max_nodes: 1 << 14,
                ..Default::default()
            });
            let got = solve_knapsack(&inst, &q, 4);
            assert_eq!(got.best_profit, inst.optimum_dp());
            assert!(q.is_empty(), "queue must drain");
        }
    }

    #[test]
    fn coarse_baseline_matches_dp() {
        let inst = KnapsackInstance::generate(KnapsackSpec::new(20, Correlation::Weak, 7));
        let q = ItemwiseBatch::new(baseline_heaps::CoarseLockPq::<u64, KsNode>::new(), 8);
        let got = solve_knapsack(&inst, &q, 4);
        assert_eq!(got.best_profit, inst.optimum_dp());
    }

    #[test]
    fn spraylist_relaxed_still_optimal() {
        let inst = KnapsackInstance::generate(KnapsackSpec::new(18, Correlation::Strong, 9));
        let q = ItemwiseBatch::new(skiplist_pq::SprayListPq::<u64, KsNode>::new(4, 32), 8);
        let got = solve_knapsack(&inst, &q, 4);
        assert_eq!(got.best_profit, inst.optimum_dp());
    }

    #[test]
    fn single_item_instances() {
        let inst = KnapsackInstance::generate(KnapsackSpec::new(1, Correlation::Uncorrelated, 5));
        let q: CpuBgpq<u64, KsNode> =
            CpuBgpq::new(BgpqOptions { node_capacity: 4, max_nodes: 64, ..Default::default() });
        assert_eq!(solve_knapsack(&inst, &q, 2).best_profit, inst.optimum_dp());
    }
}
