//! Single-source shortest paths (Dijkstra) over a concurrent priority
//! queue — the paper's introductory motivating workload (§1) and the
//! problem the prior GPU priority-queue work it cites targets.
//!
//! Same parallel relaxation pattern as the A* driver, without a
//! heuristic: workers pop batches of tentative `(dist, vertex)` labels,
//! discard stale ones, relax outgoing edges through per-vertex atomic
//! distances, and push improvements. Terminates when the open set
//! drains; with non-negative weights the distance array then equals the
//! sequential Dijkstra's.

use pq_api::{BatchPriorityQueue, Entry};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use workloads::Graph;

/// An open-list label: vertex reached at tentative distance `dist`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SsspNode {
    pub vertex: u32,
    pub dist: u64,
}

/// Result of a parallel SSSP run.
#[derive(Debug)]
pub struct SsspResult {
    /// Final distances (`u64::MAX` = unreachable).
    pub dist: Vec<u64>,
    /// Labels processed.
    pub nodes_expanded: u64,
}

/// Compute shortest paths from `source` with `threads` workers sharing
/// queue `q`.
pub fn solve_sssp<Q>(graph: &Graph, source: usize, q: &Q, threads: usize) -> SsspResult
where
    Q: BatchPriorityQueue<u64, SsspNode> + ?Sized,
{
    let n = graph.vertices();
    let best: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    best[source].store(0, Ordering::Release);
    let outstanding = AtomicI64::new(1);
    let expanded = AtomicU64::new(0);
    q.insert_batch(&[Entry::new(0, SsspNode { vertex: source as u32, dist: 0 })]);

    std::thread::scope(|s| {
        for _ in 0..threads.max(1) {
            s.spawn(|| {
                let k = q.batch_capacity();
                let mut out: Vec<Entry<u64, SsspNode>> = Vec::with_capacity(k);
                let mut children: Vec<Entry<u64, SsspNode>> = Vec::with_capacity(4 * k);
                loop {
                    out.clear();
                    let got = q.delete_min_batch(&mut out, k);
                    if got == 0 {
                        if outstanding.load(Ordering::Acquire) <= 0 {
                            return;
                        }
                        std::thread::yield_now();
                        continue;
                    }
                    children.clear();
                    for e in &out {
                        let node = e.value;
                        let v = node.vertex as usize;
                        if node.dist > best[v].load(Ordering::Acquire) {
                            continue; // stale label
                        }
                        for &(t, w) in graph.neighbors(v) {
                            let nd = node.dist + w as u64;
                            let tv = t as usize;
                            let mut cur = best[tv].load(Ordering::Acquire);
                            loop {
                                if nd >= cur {
                                    break;
                                }
                                match best[tv].compare_exchange_weak(
                                    cur,
                                    nd,
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                ) {
                                    Ok(_) => {
                                        children
                                            .push(Entry::new(nd, SsspNode { vertex: t, dist: nd }));
                                        break;
                                    }
                                    Err(now) => cur = now,
                                }
                            }
                        }
                    }
                    expanded.fetch_add(got as u64, Ordering::Relaxed);
                    if !children.is_empty() {
                        outstanding.fetch_add(children.len() as i64, Ordering::AcqRel);
                        for chunk in children.chunks(k) {
                            q.insert_batch(chunk);
                        }
                    }
                    outstanding.fetch_sub(got as i64, Ordering::AcqRel);
                }
            });
        }
    });

    SsspResult {
        dist: best.iter().map(|a| a.load(Ordering::Acquire)).collect(),
        nodes_expanded: expanded.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq::{BgpqOptions, CpuBgpq};
    use pq_api::ItemwiseBatch;
    use workloads::GraphSpec;

    fn graphs() -> Vec<Graph> {
        vec![
            Graph::generate(GraphSpec::new(200, 3, 1)),
            Graph::generate(GraphSpec::new(500, 5, 2)),
            Graph::generate(GraphSpec::new(50, 2, 3)),
        ]
    }

    #[test]
    fn bgpq_matches_reference_dijkstra() {
        for g in graphs() {
            let q: CpuBgpq<u64, SsspNode> = CpuBgpq::new(BgpqOptions {
                node_capacity: 32,
                max_nodes: 1 << 14,
                ..Default::default()
            });
            let r = solve_sssp(&g, 0, &q, 4);
            assert_eq!(r.dist, g.dijkstra_reference(0));
            assert!(q.is_empty());
        }
    }

    #[test]
    fn baselines_match_reference() {
        let g = Graph::generate(GraphSpec::new(300, 4, 7));
        let expect = g.dijkstra_reference(0);

        let coarse = ItemwiseBatch::new(baseline_heaps::CoarseLockPq::<u64, SsspNode>::new(), 16);
        assert_eq!(solve_sssp(&g, 0, &coarse, 4).dist, expect);

        let spray = ItemwiseBatch::new(skiplist_pq::SprayListPq::<u64, SsspNode>::new(4, 16), 16);
        assert_eq!(solve_sssp(&g, 0, &spray, 4).dist, expect, "relaxed order, same fixpoint");
    }

    #[test]
    fn source_other_than_zero() {
        let g = Graph::generate(GraphSpec::new(150, 4, 9));
        let q: CpuBgpq<u64, SsspNode> = CpuBgpq::new(BgpqOptions {
            node_capacity: 16,
            max_nodes: 1 << 12,
            ..Default::default()
        });
        let src = 42;
        let r = solve_sssp(&g, src, &q, 2);
        assert_eq!(r.dist, g.dijkstra_reference(src));
        assert_eq!(r.dist[src], 0);
    }

    #[test]
    fn single_vertex_graph() {
        let g = Graph::generate(GraphSpec::new(1, 1, 0));
        let q: CpuBgpq<u64, SsspNode> =
            CpuBgpq::new(BgpqOptions { node_capacity: 4, max_nodes: 16, ..Default::default() });
        let r = solve_sssp(&g, 0, &q, 2);
        assert_eq!(r.dist, vec![0]);
    }
}
