//! A* route planning on obstacle grids over a concurrent priority
//! queue.
//!
//! Parallel best-first relaxation in the branch-and-bound style: workers
//! pop batches of open cells ordered by `f = g + h`, drop stale entries
//! (a cheaper `g` has been recorded since), expand the 8 neighbours,
//! publish improvements through per-cell atomic `g` values, and prune
//! against the incumbent goal cost. The search terminates when the open
//! set drains; the incumbent is then the optimal cost (every pruned
//! node's `f` was a lower bound on any path through it).
//!
//! Costs are integers: 2 per straight step, 3 per diagonal step
//! (≈ √2·2, rounded *up* to stay conservative), and the heuristic is
//! the paper's Manhattan distance (in units of 1 ≤ half a straight
//! step), which keeps it admissible under 8-direction movement.

use pq_api::{BatchPriorityQueue, Entry};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use workloads::Grid;

/// Cost of a straight move (N/S/E/W).
pub const STRAIGHT_COST: u64 = 2;
/// Cost of a diagonal move.
pub const DIAGONAL_COST: u64 = 3;

/// An open-list entry: a cell reached with cost `g`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AstarNode {
    pub x: u32,
    pub y: u32,
    pub g: u64,
}

/// Outcome of a search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AstarResult {
    /// Cost of the shortest start→goal path (`None` if unreachable —
    /// cannot happen for generated grids, which guarantee a path).
    pub cost: Option<u64>,
    /// Open-list entries processed.
    pub nodes_expanded: u64,
}

#[inline]
fn step_cost(dx: usize, dy: usize) -> u64 {
    if dx != 0 && dy != 0 {
        DIAGONAL_COST
    } else {
        STRAIGHT_COST
    }
}

/// Solve `grid` with `threads` workers sharing queue `q`.
pub fn solve_astar<Q>(grid: &Grid, q: &Q, threads: usize) -> AstarResult
where
    Q: BatchPriorityQueue<u64, AstarNode> + ?Sized,
{
    let best_g: Vec<AtomicU64> = (0..grid.cells()).map(|_| AtomicU64::new(u64::MAX)).collect();
    let incumbent = AtomicU64::new(u64::MAX);
    let outstanding = AtomicI64::new(1);
    let expanded = AtomicU64::new(0);

    let (sx, sy) = grid.start();
    best_g[grid.idx(sx, sy)].store(0, Ordering::Release);
    let h0 = grid.manhattan_to_goal(sx, sy);
    q.insert_batch(&[Entry::new(h0, AstarNode { x: sx as u32, y: sy as u32, g: 0 })]);
    let goal = grid.goal();

    std::thread::scope(|s| {
        for _ in 0..threads.max(1) {
            s.spawn(|| {
                let k = q.batch_capacity();
                let mut out: Vec<Entry<u64, AstarNode>> = Vec::with_capacity(k);
                let mut children: Vec<Entry<u64, AstarNode>> = Vec::with_capacity(8 * k);
                loop {
                    out.clear();
                    let got = q.delete_min_batch(&mut out, k);
                    if got == 0 {
                        if outstanding.load(Ordering::Acquire) <= 0 {
                            return;
                        }
                        std::thread::yield_now();
                        continue;
                    }
                    children.clear();
                    for e in &out {
                        let node = e.value;
                        let (x, y) = (node.x as usize, node.y as usize);
                        let cell = grid.idx(x, y);
                        // Stale? A better route to this cell was found.
                        if node.g > best_g[cell].load(Ordering::Acquire) {
                            continue;
                        }
                        // Bounded? f cannot beat the incumbent path.
                        let f = node.g + grid.manhattan_to_goal(x, y);
                        if f >= incumbent.load(Ordering::Acquire) {
                            continue;
                        }
                        if (x, y) == goal {
                            incumbent.fetch_min(node.g, Ordering::AcqRel);
                            continue;
                        }
                        for (nx, ny) in grid.neighbors(x, y) {
                            let ng = node.g + step_cost(x.abs_diff(nx), y.abs_diff(ny));
                            let ncell = grid.idx(nx, ny);
                            // Publish if better (CAS loop).
                            let mut cur = best_g[ncell].load(Ordering::Acquire);
                            loop {
                                if ng >= cur {
                                    break;
                                }
                                match best_g[ncell].compare_exchange_weak(
                                    cur,
                                    ng,
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                ) {
                                    Ok(_) => {
                                        let nf = ng + grid.manhattan_to_goal(nx, ny);
                                        if nf < incumbent.load(Ordering::Acquire) {
                                            children.push(Entry::new(
                                                nf,
                                                AstarNode { x: nx as u32, y: ny as u32, g: ng },
                                            ));
                                        }
                                        break;
                                    }
                                    Err(now) => cur = now,
                                }
                            }
                        }
                    }
                    expanded.fetch_add(got as u64, Ordering::Relaxed);
                    if !children.is_empty() {
                        outstanding.fetch_add(children.len() as i64, Ordering::AcqRel);
                        for chunk in children.chunks(k) {
                            q.insert_batch(chunk);
                        }
                    }
                    outstanding.fetch_sub(got as i64, Ordering::AcqRel);
                }
            });
        }
    });

    let g = incumbent.load(Ordering::Acquire);
    AstarResult {
        cost: (g != u64::MAX).then_some(g),
        nodes_expanded: expanded.load(Ordering::Relaxed),
    }
}

/// Sequential reference A* with the same costs and heuristic.
pub fn solve_astar_sequential(grid: &Grid) -> AstarResult {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut best_g = vec![u64::MAX; grid.cells()];
    let mut open: BinaryHeap<Reverse<(u64, u64, usize, usize)>> = BinaryHeap::new();
    let (sx, sy) = grid.start();
    best_g[grid.idx(sx, sy)] = 0;
    open.push(Reverse((grid.manhattan_to_goal(sx, sy), 0, sx, sy)));
    let goal = grid.goal();
    let mut expanded = 0u64;
    while let Some(Reverse((_f, g, x, y))) = open.pop() {
        if g > best_g[grid.idx(x, y)] {
            continue;
        }
        expanded += 1;
        if (x, y) == goal {
            return AstarResult { cost: Some(g), nodes_expanded: expanded };
        }
        for (nx, ny) in grid.neighbors(x, y) {
            let ng = g + step_cost(x.abs_diff(nx), y.abs_diff(ny));
            let ncell = grid.idx(nx, ny);
            if ng < best_g[ncell] {
                best_g[ncell] = ng;
                open.push(Reverse((ng + grid.manhattan_to_goal(nx, ny), ng, nx, ny)));
            }
        }
    }
    AstarResult { cost: None, nodes_expanded: expanded }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq::{BgpqOptions, CpuBgpq};
    use pq_api::ItemwiseBatch;
    use workloads::GridSpec;

    fn grids() -> Vec<Grid> {
        vec![
            Grid::generate(GridSpec::new(24, 0.10, 1)),
            Grid::generate(GridSpec::new(24, 0.20, 2)),
            Grid::generate(GridSpec::new(40, 0.20, 3)),
            Grid::generate(GridSpec::new(16, 0.35, 4)),
        ]
    }

    #[test]
    fn sequential_finds_a_path_on_generated_grids() {
        for g in grids() {
            let r = solve_astar_sequential(&g);
            assert!(r.cost.is_some(), "generated grids guarantee a path");
        }
    }

    #[test]
    fn bgpq_parallel_matches_sequential_cost() {
        for g in grids() {
            let q: CpuBgpq<u64, AstarNode> = CpuBgpq::new(BgpqOptions {
                node_capacity: 16,
                max_nodes: 1 << 14,
                ..Default::default()
            });
            let par = solve_astar(&g, &q, 4);
            let seq = solve_astar_sequential(&g);
            assert_eq!(par.cost, seq.cost);
            assert!(q.is_empty());
        }
    }

    #[test]
    fn baselines_match_sequential_cost() {
        let g = Grid::generate(GridSpec::new(32, 0.2, 9));
        let seq = solve_astar_sequential(&g).cost;

        let coarse = ItemwiseBatch::new(baseline_heaps::CoarseLockPq::<u64, AstarNode>::new(), 16);
        assert_eq!(solve_astar(&g, &coarse, 4).cost, seq);

        let lj = ItemwiseBatch::new(skiplist_pq::LindenJonssonPq::<u64, AstarNode>::new(16), 16);
        assert_eq!(solve_astar(&g, &lj, 4).cost, seq);

        let spray = ItemwiseBatch::new(skiplist_pq::SprayListPq::<u64, AstarNode>::new(4, 16), 16);
        assert_eq!(
            solve_astar(&g, &spray, 4).cost,
            seq,
            "relaxed order must not change the optimum"
        );
    }

    #[test]
    fn heuristic_is_admissible_on_samples() {
        // h (Manhattan in unit steps) must never exceed the true cost
        // from any cell — spot-check via full sequential searches from a
        // few cells by re-rooting.
        let g = Grid::generate(GridSpec::new(20, 0.15, 6));
        let seq = solve_astar_sequential(&g);
        let cost = seq.cost.unwrap();
        assert!(g.manhattan_to_goal(0, 0) <= cost, "root heuristic must lower-bound the optimum");
    }

    #[test]
    fn trivial_grid_cost_is_diagonal() {
        // 2x2 empty-ish grid: one diagonal step.
        let g = Grid::generate(GridSpec::new(2, 0.0, 0));
        let r = solve_astar_sequential(&g);
        assert_eq!(r.cost, Some(DIAGONAL_COST));
    }
}
