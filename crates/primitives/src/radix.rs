//! LSD radix sort — the third GPU sorting primitive §4 names
//! ("bitonic sort, merge sort, and radix sort").
//!
//! A GPU LSD radix sort processes `bits/digit_bits` passes; each pass
//! is a count → exclusive-scan → scatter pipeline executed by the
//! whole thread block with a barrier between the three stages. We
//! execute the identical pass structure sequentially (the stages are
//! data-parallel within a pass, so results match), and
//! [`crate::CostModel::radix_sort_cycles`] charges the corresponding
//! lock-step schedule.
//!
//! Radix sort orders by a `u32` rank, so it applies to keys that expose
//! one — [`RadixKey`] — covering the integer key types the paper's
//! evaluation uses (30/32-bit keys, and 64-bit app priorities by
//! sorting on the high half first... here: full u64 via two chained
//! 32-bit sorts).

/// A key with a radix (unsigned integer) representation whose order
/// matches `Ord`.
pub trait RadixKey: Copy {
    /// Bits in the rank actually used (passes = ceil(bits / 8)).
    const RANK_BITS: u32;
    /// Order-preserving unsigned rank.
    fn rank(&self) -> u64;
}

impl RadixKey for u32 {
    const RANK_BITS: u32 = 32;
    fn rank(&self) -> u64 {
        *self as u64
    }
}

impl RadixKey for u64 {
    const RANK_BITS: u32 = 64;
    fn rank(&self) -> u64 {
        *self
    }
}

impl RadixKey for i32 {
    const RANK_BITS: u32 = 32;
    fn rank(&self) -> u64 {
        (*self as u32 ^ 0x8000_0000) as u64
    }
}

impl RadixKey for i64 {
    const RANK_BITS: u32 = 64;
    fn rank(&self) -> u64 {
        *self as u64 ^ 0x8000_0000_0000_0000
    }
}

const DIGIT_BITS: u32 = 8;
const BUCKETS: usize = 1 << DIGIT_BITS;

/// Number of count/scan/scatter passes for a key type.
pub fn radix_passes<T: RadixKey>() -> u32 {
    T::RANK_BITS.div_ceil(DIGIT_BITS)
}

/// Stable LSD radix sort by `RadixKey` rank.
pub fn radix_sort_by_key<T, K, F>(data: &mut [T], key_of: F)
where
    T: Copy,
    K: RadixKey,
    F: Fn(&T) -> K,
{
    let n = data.len();
    if n <= 1 {
        return;
    }
    let passes = radix_passes::<K>();
    let mut src: Vec<T> = data.to_vec();
    let mut dst: Vec<T> = Vec::with_capacity(n);
    // SAFETY-free version: use a second buffer initialised by cloning.
    dst.extend_from_slice(data);

    for pass in 0..passes {
        let shift = pass * DIGIT_BITS;
        // Stage 1 (block-parallel on a GPU): digit histogram.
        let mut counts = [0usize; BUCKETS];
        for item in src.iter() {
            let d = ((key_of(item).rank() >> shift) & (BUCKETS as u64 - 1)) as usize;
            counts[d] += 1;
        }
        // Stage 2: exclusive prefix scan of the histogram.
        let mut offsets = [0usize; BUCKETS];
        let mut acc = 0;
        for (o, c) in offsets.iter_mut().zip(counts.iter()) {
            *o = acc;
            acc += c;
        }
        // Stage 3: stable scatter.
        for item in src.iter() {
            let d = ((key_of(item).rank() >> shift) & (BUCKETS as u64 - 1)) as usize;
            dst[offsets[d]] = *item;
            offsets[d] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    data.copy_from_slice(&src);
}

/// Convenience: sort a slice of radix keys directly.
pub fn radix_sort<K: RadixKey + Ord>(data: &mut [K]) {
    radix_sort_by_key(data, |k| *k);
}

/// Merge sort built from the merge-path primitive: `log2(n)` rounds of
/// pairwise merges, each round fully data-parallel across a thread
/// block (§4's "merge sort" option).
pub fn merge_sort<T: Ord + Copy>(data: &mut [T]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let mut width = 1usize;
    let mut src: Vec<T> = data.to_vec();
    let mut dst: Vec<T> = data.to_vec();
    while width < n {
        // One round: merge adjacent sorted runs of `width`.
        let mut start = 0;
        while start < n {
            let mid = (start + width).min(n);
            let end = (start + 2 * width).min(n);
            crate::merge_path::merge_into(&src[start..mid], &src[mid..end], &mut dst[start..end]);
            start = end;
        }
        std::mem::swap(&mut src, &mut dst);
        width *= 2;
    }
    data.copy_from_slice(&src);
}

/// Number of pairwise-merge rounds for `n` elements.
pub fn merge_sort_rounds(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn radix_matches_std_sort() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [0usize, 1, 2, 7, 100, 1000] {
            let mut v: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            radix_sort(&mut v);
            assert_eq!(v, expect, "n={n}");
        }
    }

    #[test]
    fn radix_signed_keys() {
        let mut v: Vec<i32> = vec![5, -3, 0, i32::MIN, i32::MAX, -3];
        radix_sort(&mut v);
        assert_eq!(v, vec![i32::MIN, -3, -3, 0, 5, i32::MAX]);
        let mut w: Vec<i64> = vec![9, -9, 0];
        radix_sort(&mut w);
        assert_eq!(w, vec![-9, 0, 9]);
    }

    #[test]
    fn radix_is_stable() {
        // Sort (key, tag) pairs by key only; equal keys keep tag order.
        let mut v: Vec<(u32, u32)> = vec![(2, 0), (1, 1), (2, 2), (1, 3), (2, 4)];
        radix_sort_by_key(&mut v, |&(k, _)| k);
        assert_eq!(v, vec![(1, 1), (1, 3), (2, 0), (2, 2), (2, 4)]);
    }

    #[test]
    fn radix_u64_full_width() {
        let mut v: Vec<u64> = vec![u64::MAX, 0, 1 << 40, 1 << 20, u64::MAX - 1];
        radix_sort(&mut v);
        assert_eq!(v, vec![0, 1 << 20, 1 << 40, u64::MAX - 1, u64::MAX]);
    }

    #[test]
    fn merge_sort_matches_std() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [0usize, 1, 3, 64, 100, 1023] {
            let mut v: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            merge_sort(&mut v);
            assert_eq!(v, expect, "n={n}");
        }
    }

    #[test]
    fn round_and_pass_counts() {
        assert_eq!(radix_passes::<u32>(), 4);
        assert_eq!(radix_passes::<u64>(), 8);
        assert_eq!(merge_sort_rounds(1), 0);
        assert_eq!(merge_sort_rounds(2), 1);
        assert_eq!(merge_sort_rounds(1024), 10);
        assert_eq!(merge_sort_rounds(1000), 10);
    }
}
