//! # bgpq-gpu-primitives — data-parallel building blocks
//!
//! BGPQ's node-level operations are built from three GPU primitives
//! (§4 of the paper):
//!
//! * **Bitonic sort** (Peters et al. \[22\]) — sorting a batch of keys held
//!   in shared memory. Implemented here as the *actual sorting network*:
//!   the same compare-exchange schedule a CUDA thread block executes, so
//!   the simulator can charge cycles per network step.
//! * **GPU Merge Path** (Green, McColl, Bader \[11\]) — merging two sorted
//!   batches by splitting the merge matrix along cross diagonals so that
//!   every thread (partition) merges an independent, equal-sized chunk.
//! * **`SORT_SPLIT`** — the paper's core node operation: merge two sorted
//!   nodes and split the result into the `Ma` smallest and the remaining
//!   largest keys (formal definition in §4). Built on merge path.
//!
//! Each primitive also exposes a *work/step count* so the virtual-time
//! simulator (`gpu-sim`) can charge a faithful cycle cost as a function of
//! batch size and thread-block width, without this crate depending on the
//! simulator.

pub mod bitonic;
pub mod cost;
pub mod merge_path;
pub mod radix;
pub mod simd;
pub mod sort_split;

pub use bitonic::{bitonic_sort, bitonic_sort_padded, bitonic_sort_scalar, is_power_of_two};
pub use cost::{CostModel, PrimitiveCost, SortAlgo};
pub use merge_path::{
    merge_into, merge_into_scalar, merge_into_vec, merge_path_partition, merge_path_search,
    parallel_merge,
};
pub use radix::{merge_sort, radix_sort, radix_sort_by_key, RadixKey};
pub use sort_split::{sort_split, sort_split_full, SortSplitResult};
