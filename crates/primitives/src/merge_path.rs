//! GPU Merge Path (Green, McColl & Bader, ICS'12).
//!
//! Merging two sorted sequences `A` (len `m`) and `B` (len `n`) can be
//! viewed as a monotone staircase path through an `m × n` grid. Merge
//! Path assigns thread `i` the segment of the output between cross
//! diagonals `i·L` and `(i+1)·L` (with `L = (m+n)/p`); each thread binary
//! searches its diagonal for the staircase intersection and then merges
//! its chunk independently — no inter-thread communication until the
//! final barrier.
//!
//! We implement the same decomposition. [`parallel_merge`] runs the
//! per-partition merges in their schedule order (they are independent, so
//! sequential execution yields the identical result a thread block
//! produces), and the partition/search counts feed the cost model.

/// Find the merge-path intersection for cross diagonal `diag`
/// (`0 <= diag <= a.len() + b.len()`): returns `(i, j)` with
/// `i + j == diag` such that merging `a[..i]` and `b[..j]` yields the
/// first `diag` output elements. Stable: ties are broken toward
/// consuming from `a` first.
pub fn merge_path_search<T: Ord>(a: &[T], b: &[T], diag: usize) -> (usize, usize) {
    debug_assert!(diag <= a.len() + b.len());
    // Binary search over i in [max(0, diag-n), min(diag, m)].
    let mut lo = diag.saturating_sub(b.len());
    let mut hi = diag.min(a.len());
    while lo < hi {
        let i = lo + (hi - lo) / 2;
        let j = diag - i;
        // Path goes below-left of (i, j) iff a[i] <= b[j-1] is violated.
        // Stability (a first on ties): advance in `a` while
        // a[i] <= b[j-1], i.e. move i up when a[i] < b[j-1] OR equal.
        if j > 0 && a[i] <= b[j - 1] {
            lo = i + 1;
        } else {
            hi = i;
        }
    }
    (lo, diag - lo)
}

/// Sequential two-way merge of sorted `a` and `b` into `out`
/// (`out.len() == a.len() + b.len()`). Stable (`a` wins ties).
pub fn merge_into<T: Ord + Copy>(a: &[T], b: &[T], out: &mut [T]) {
    assert_eq!(out.len(), a.len() + b.len(), "output size mismatch");
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        if i < a.len() && (j >= b.len() || a[i] <= b[j]) {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

/// Merge with the Merge Path decomposition into `partitions` independent
/// chunks — the schedule a `partitions`-thread block executes. Each chunk
/// performs one diagonal binary search plus a bounded sequential merge.
///
/// Produces exactly the same output as [`merge_into`].
pub fn parallel_merge<T: Ord + Copy>(a: &[T], b: &[T], out: &mut [T], partitions: usize) {
    assert_eq!(out.len(), a.len() + b.len(), "output size mismatch");
    assert!(partitions >= 1, "need at least one partition");
    let total = out.len();
    if total == 0 {
        return;
    }
    let chunk = total.div_ceil(partitions);

    // Phase 1 (parallel on GPU): each partition searches its starting
    // diagonal. Phase 2 (parallel on GPU): each partition merges
    // out[d0..d1] from a[i0..i1] x b[j0..j1]. The partitions write
    // disjoint output ranges, so running them in sequence is
    // result-identical to the lock-step execution.
    let mut starts = Vec::with_capacity(partitions + 1);
    for p in 0..=partitions {
        let diag = (p * chunk).min(total);
        starts.push(merge_path_search(a, b, diag));
    }

    for p in 0..partitions {
        let (i0, j0) = starts[p];
        let (i1, j1) = starts[p + 1];
        let d0 = i0 + j0;
        let d1 = i1 + j1;
        merge_into(&a[i0..i1], &b[j0..j1], &mut out[d0..d1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn std_merge(a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut v: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
        v.sort();
        v
    }

    #[test]
    fn search_endpoints() {
        let a = [1u32, 3, 5];
        let b = [2u32, 4, 6];
        assert_eq!(merge_path_search(&a, &b, 0), (0, 0));
        assert_eq!(merge_path_search(&a, &b, 6), (3, 3));
    }

    #[test]
    fn search_matches_prefix_semantics() {
        let a = [1u32, 3, 5, 7];
        let b = [2u32, 2, 6];
        for diag in 0..=a.len() + b.len() {
            let (i, j) = merge_path_search(&a, &b, diag);
            assert_eq!(i + j, diag);
            // Merging the prefixes must give the diag smallest elements.
            let mut merged: Vec<u32> = a[..i].iter().chain(b[..j].iter()).copied().collect();
            merged.sort();
            let mut all = std_merge(&a, &b);
            all.truncate(diag);
            assert_eq!(merged, all, "diag={diag}");
        }
    }

    #[test]
    fn merge_into_is_stable_and_sorted() {
        let a = [1u32, 4, 4, 9];
        let b = [0u32, 4, 8];
        let mut out = [0u32; 7];
        merge_into(&a, &b, &mut out);
        assert_eq!(out, [0, 1, 4, 4, 4, 8, 9]);
    }

    #[test]
    fn parallel_merge_matches_sequential_for_all_partition_counts() {
        let a: Vec<u32> = (0..64).map(|x| x * 3).collect();
        let b: Vec<u32> = (0..48).map(|x| x * 4 + 1).collect();
        let mut reference = vec![0u32; a.len() + b.len()];
        merge_into(&a, &b, &mut reference);
        for p in [1usize, 2, 3, 7, 16, 32, 112, 200] {
            let mut out = vec![0u32; a.len() + b.len()];
            parallel_merge(&a, &b, &mut out, p);
            assert_eq!(out, reference, "partitions={p}");
        }
    }

    #[test]
    fn empty_inputs() {
        let mut out: [u32; 0] = [];
        parallel_merge(&[], &[], &mut out, 4);
        let a = [1u32, 2];
        let mut out2 = [0u32; 2];
        parallel_merge(&a, &[], &mut out2, 3);
        assert_eq!(out2, [1, 2]);
        let mut out3 = [0u32; 2];
        parallel_merge(&[], &a, &mut out3, 3);
        assert_eq!(out3, [1, 2]);
    }
}
