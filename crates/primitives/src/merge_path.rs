//! GPU Merge Path (Green, McColl & Bader, ICS'12).
//!
//! Merging two sorted sequences `A` (len `m`) and `B` (len `n`) can be
//! viewed as a monotone staircase path through an `m × n` grid. Merge
//! Path assigns thread `i` the segment of the output between cross
//! diagonals `i·L` and `(i+1)·L` (with `L = (m+n)/p`); each thread binary
//! searches its diagonal for the staircase intersection and then merges
//! its chunk independently — no inter-thread communication until the
//! final barrier.
//!
//! We implement the same decomposition. [`parallel_merge`] runs the
//! per-partition merges in their schedule order (they are independent, so
//! sequential execution yields the identical result a thread block
//! produces), and the partition/search counts feed the cost model.

/// Find the merge-path intersection for cross diagonal `diag`
/// (`0 <= diag <= a.len() + b.len()`): returns `(i, j)` with
/// `i + j == diag` such that merging `a[..i]` and `b[..j]` yields the
/// first `diag` output elements. Stable: ties are broken toward
/// consuming from `a` first.
pub fn merge_path_search<T: Ord>(a: &[T], b: &[T], diag: usize) -> (usize, usize) {
    debug_assert!(diag <= a.len() + b.len());
    // Binary search over i in [max(0, diag-n), min(diag, m)].
    let mut lo = diag.saturating_sub(b.len());
    let mut hi = diag.min(a.len());
    while lo < hi {
        let i = lo + (hi - lo) / 2;
        let j = diag - i;
        // Path goes below-left of (i, j) iff a[i] <= b[j-1] is violated.
        // Stability (a first on ties): advance in `a` while
        // a[i] <= b[j-1], i.e. move i up when a[i] < b[j-1] OR equal.
        if j > 0 && a[i] <= b[j - 1] {
            lo = i + 1;
        } else {
            hi = i;
        }
    }
    (lo, diag - lo)
}

/// Walk the merge of sorted `a` and `b` in output chunks of at most
/// `chunk_len`, calling `f(d0..d1, i0..i1, j0..j1)` for each chunk:
/// output positions `d0..d1` are produced by merging `a[i0..i1]` with
/// `b[j0..j1]`. Boundaries come from [`merge_path_search`], so the
/// chunks compose to exactly the stable (`a` wins ties) merge.
///
/// This is the Merge Path *outer loop* shared by the scalar
/// [`parallel_merge`] schedule and the SIMD kernels in [`crate::simd`]:
/// a chunk whose `a` (or `b`) range is empty is a pure copy of the
/// other run — the caller can service it with a bulk copy and reserve
/// the merge kernel for chunks where the runs actually cross.
pub fn merge_path_partition<T: Ord>(
    a: &[T],
    b: &[T],
    chunk_len: usize,
    mut f: impl FnMut(core::ops::Range<usize>, core::ops::Range<usize>, core::ops::Range<usize>),
) {
    assert!(chunk_len >= 1, "need a positive chunk length");
    let total = a.len() + b.len();
    let (mut i0, mut j0) = (0usize, 0usize);
    let mut d0 = 0usize;
    while d0 < total {
        let d1 = (d0 + chunk_len).min(total);
        let (i1, j1) = merge_path_search(a, b, d1);
        f(d0..d1, i0..i1, j0..j1);
        (i0, j0, d0) = (i1, j1, d1);
    }
}

/// Reference two-way merge: the textbook branchy loop. Kept as the
/// differential-test oracle for [`merge_into`] (and as documentation of
/// the required semantics: stable, `a` wins ties). Not used on hot
/// paths.
pub fn merge_into_scalar<T: Ord + Copy>(a: &[T], b: &[T], out: &mut [T]) {
    assert_eq!(out.len(), a.len() + b.len(), "output size mismatch");
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        if i < a.len() && (j >= b.len() || a[i] <= b[j]) {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

/// Sequential two-way merge of sorted `a` and `b` into `out`
/// (`out.len() == a.len() + b.len()`). Stable (`a` wins ties).
///
/// Check-free unrolled fast path: while both runs have ≥ 4 elements
/// left, a 4-wide unrolled loop merges with no bounds checks and no
/// run-exhaustion tests — the guard proves every access in-bounds for
/// four steps at a time. The element *selection* stays a branch on
/// purpose: the heapify cascades feed this merge runs whose
/// take-direction is highly predictable (one side wins for long
/// stretches after a `SORT_SPLIT`), and on such inputs the predicted
/// branch lets the core speculate past the serial compare→select→
/// advance dependency chain. The cmov formulation (select and cursor
/// bumps as conditional moves) was measured ~3.5× slower in that
/// regime on the benchmark host, only pulling ahead ~10% on
/// adversarially random interleavings — see EXPERIMENTS.md
/// ("hot-path"). Exhausted tails finish with bulk copies. Semantics
/// are identical to [`merge_into_scalar`] (differential-tested in
/// `tests/proptests.rs`).
pub fn merge_into<T: Ord + Copy>(a: &[T], b: &[T], out: &mut [T]) {
    let (m, n) = (a.len(), b.len());
    assert_eq!(out.len(), m + n, "output size mismatch");
    let (mut i, mut j, mut o) = (0usize, 0usize, 0usize);

    // Fast path: each of the next 4 steps consumes one element from
    // either run, so `i` grows by at most 4 and `j` by at most 4 — the
    // guard makes every access in-bounds with no per-element check.
    while i + 4 <= m && j + 4 <= n {
        for _ in 0..4 {
            // SAFETY: the loop guard bounds i < m and j < n for all four
            // steps (each step advances exactly one cursor by one), and
            // o < m + n because o == i + j.
            unsafe {
                let av = *a.get_unchecked(i);
                let bv = *b.get_unchecked(j);
                if av <= bv {
                    *out.get_unchecked_mut(o) = av;
                    i += 1;
                } else {
                    *out.get_unchecked_mut(o) = bv;
                    j += 1;
                }
            }
            o += 1;
        }
    }

    // Remainder until one run is exhausted.
    while i < m && j < n {
        let (av, bv) = (a[i], b[j]);
        if av <= bv {
            out[o] = av;
            i += 1;
        } else {
            out[o] = bv;
            j += 1;
        }
        o += 1;
    }

    // Exactly one tail is non-empty; both copies are cheap no-ops
    // otherwise.
    out[o..o + (m - i)].copy_from_slice(&a[i..]);
    o += m - i;
    out[o..].copy_from_slice(&b[j..]);
}

/// Merge sorted `a` and `b` into `out`, a `Vec` that is cleared and
/// refilled without zero-initializing: the merge writes straight into
/// the vector's spare capacity. This is the allocation- and
/// memset-free form the `SORT_SPLIT` hot path uses — with a scratch
/// vector that has warmed up to `a.len() + b.len()` capacity, the call
/// performs no allocation at all.
pub fn merge_into_vec<T: Ord + Copy>(a: &[T], b: &[T], out: &mut Vec<T>) {
    let (m, n) = (a.len(), b.len());
    let total = m + n;
    out.clear();
    out.reserve(total);
    // Same check-free unrolled shape as `merge_into` (see its docs for
    // why the selection stays a branch), writing through the spare
    // capacity so nothing is zero-initialized first.
    let dst = out.as_mut_ptr();
    let (mut i, mut j, mut o) = (0usize, 0usize, 0usize);
    while i + 4 <= m && j + 4 <= n {
        for _ in 0..4 {
            // SAFETY: the guard bounds i < m and j < n for all four
            // steps; o == i + j < total <= capacity after the reserve.
            unsafe {
                let av = *a.get_unchecked(i);
                let bv = *b.get_unchecked(j);
                if av <= bv {
                    dst.add(o).write(av);
                    i += 1;
                } else {
                    dst.add(o).write(bv);
                    j += 1;
                }
            }
            o += 1;
        }
    }
    while i < m && j < n {
        let (av, bv) = (a[i], b[j]);
        // SAFETY: o == i + j < total <= capacity.
        unsafe {
            if av <= bv {
                dst.add(o).write(av);
                i += 1;
            } else {
                dst.add(o).write(bv);
                j += 1;
            }
        }
        o += 1;
    }
    // SAFETY: the tail writes stay within o + (m - i) + (n - j) ==
    // total <= capacity, and the sources don't overlap the
    // just-reserved destination.
    unsafe {
        std::ptr::copy_nonoverlapping(a.as_ptr().add(i), dst.add(o), m - i);
        o += m - i;
        std::ptr::copy_nonoverlapping(b.as_ptr().add(j), dst.add(o), n - j);
        o += n - j;
    }
    debug_assert_eq!(o, total);
    // SAFETY: the writes above initialized out[..total]; T: Copy so no
    // drops are skipped by the earlier clear-to-zero-len.
    unsafe { out.set_len(total) };
}

/// Merge with the Merge Path decomposition into `partitions` independent
/// chunks — the schedule a `partitions`-thread block executes. Each chunk
/// performs one diagonal binary search plus a bounded sequential merge.
///
/// Produces exactly the same output as [`merge_into`].
pub fn parallel_merge<T: Ord + Copy>(a: &[T], b: &[T], out: &mut [T], partitions: usize) {
    assert_eq!(out.len(), a.len() + b.len(), "output size mismatch");
    assert!(partitions >= 1, "need at least one partition");
    let total = out.len();
    if total == 0 {
        return;
    }
    let chunk = total.div_ceil(partitions);

    // Phase 1 (parallel on GPU): each partition searches its starting
    // diagonal. Phase 2 (parallel on GPU): each partition merges
    // out[d0..d1] from a[i0..i1] x b[j0..j1]. The partitions write
    // disjoint output ranges, so running them in sequence is
    // result-identical to the lock-step execution.
    let mut starts = Vec::with_capacity(partitions + 1);
    for p in 0..=partitions {
        let diag = (p * chunk).min(total);
        starts.push(merge_path_search(a, b, diag));
    }

    for p in 0..partitions {
        let (i0, j0) = starts[p];
        let (i1, j1) = starts[p + 1];
        let d0 = i0 + j0;
        let d1 = i1 + j1;
        merge_into(&a[i0..i1], &b[j0..j1], &mut out[d0..d1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn std_merge(a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut v: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
        v.sort();
        v
    }

    #[test]
    fn search_endpoints() {
        let a = [1u32, 3, 5];
        let b = [2u32, 4, 6];
        assert_eq!(merge_path_search(&a, &b, 0), (0, 0));
        assert_eq!(merge_path_search(&a, &b, 6), (3, 3));
    }

    #[test]
    fn search_matches_prefix_semantics() {
        let a = [1u32, 3, 5, 7];
        let b = [2u32, 2, 6];
        for diag in 0..=a.len() + b.len() {
            let (i, j) = merge_path_search(&a, &b, diag);
            assert_eq!(i + j, diag);
            // Merging the prefixes must give the diag smallest elements.
            let mut merged: Vec<u32> = a[..i].iter().chain(b[..j].iter()).copied().collect();
            merged.sort();
            let mut all = std_merge(&a, &b);
            all.truncate(diag);
            assert_eq!(merged, all, "diag={diag}");
        }
    }

    #[test]
    fn merge_into_is_stable_and_sorted() {
        let a = [1u32, 4, 4, 9];
        let b = [0u32, 4, 8];
        let mut out = [0u32; 7];
        merge_into(&a, &b, &mut out);
        assert_eq!(out, [0, 1, 4, 4, 4, 8, 9]);
        let mut scalar = [0u32; 7];
        merge_into_scalar(&a, &b, &mut scalar);
        assert_eq!(out, scalar);
    }

    #[test]
    fn branchless_matches_scalar_across_length_mixes() {
        // Cover: both runs long (unrolled path), one short (remainder
        // path), one empty (tail-copy path), ties everywhere.
        for (la, lb) in [(0, 0), (0, 9), (9, 0), (1, 1), (3, 17), (16, 16), (33, 41)] {
            let a: Vec<u32> = (0..la).map(|x: u32| x.wrapping_mul(2654435761) % 50).collect();
            let b: Vec<u32> = (0..lb).map(|x: u32| x.wrapping_mul(40503) % 50).collect();
            let (mut a, mut b) = (a, b);
            a.sort_unstable();
            b.sort_unstable();
            let mut fast = vec![0u32; (la + lb) as usize];
            let mut slow = fast.clone();
            merge_into(&a, &b, &mut fast);
            merge_into_scalar(&a, &b, &mut slow);
            assert_eq!(fast, slow, "la={la} lb={lb}");
        }
    }

    #[test]
    fn merge_into_vec_reuses_capacity() {
        let a = [1u32, 3, 5];
        let b = [2u32, 4, 6, 7];
        let mut out = Vec::new();
        merge_into_vec(&a, &b, &mut out);
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 7]);
        let cap = out.capacity();
        merge_into_vec(&b, &a, &mut out);
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(out.capacity(), cap, "warm scratch must not reallocate");
        merge_into_vec::<u32>(&[], &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_merge_matches_sequential_for_all_partition_counts() {
        let a: Vec<u32> = (0..64).map(|x| x * 3).collect();
        let b: Vec<u32> = (0..48).map(|x| x * 4 + 1).collect();
        let mut reference = vec![0u32; a.len() + b.len()];
        merge_into(&a, &b, &mut reference);
        for p in [1usize, 2, 3, 7, 16, 32, 112, 200] {
            let mut out = vec![0u32; a.len() + b.len()];
            parallel_merge(&a, &b, &mut out, p);
            assert_eq!(out, reference, "partitions={p}");
        }
    }

    #[test]
    fn empty_inputs() {
        let mut out: [u32; 0] = [];
        parallel_merge(&[], &[], &mut out, 4);
        let a = [1u32, 2];
        let mut out2 = [0u32; 2];
        parallel_merge(&a, &[], &mut out2, 3);
        assert_eq!(out2, [1, 2]);
        let mut out3 = [0u32; 2];
        parallel_merge(&[], &a, &mut out3, 3);
        assert_eq!(out3, [1, 2]);
    }
}
