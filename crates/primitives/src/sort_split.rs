//! The paper's `SORT_SPLIT` node operation (§4):
//!
//! ```text
//! (X[1:Ma], Y[1:Mb]) <- SORT_SPLIT(Z, Na, W, Nb, Ma)
//!   s.t. (X, Y) = sorted(Z, W)
//!        Ma + Mb = Na + Nb,  max X <= min Y,
//!        X sorted ascending, Y sorted ascending
//! ```
//!
//! i.e. merge two sorted batches and split the result: `X` receives the
//! `Ma` smallest elements, `Y` the remaining `Mb` largest, both sorted.
//! On the GPU this is one merge-path merge in shared memory followed by a
//! partitioned write-out; here we merge into a scratch buffer and copy
//! the two halves back.
//!
//! The common case ("if the range is not specified") operates on two full
//! nodes of capacity `K` with `Ma = K` — [`sort_split_full`].

use crate::merge_path::merge_into_vec;

/// Outcome sizes of a [`sort_split`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortSplitResult {
    /// Number of elements written to the small side (`Ma`).
    pub ma: usize,
    /// Number of elements written to the large side (`Mb`).
    pub mb: usize,
}

/// `SORT_SPLIT` over the valid prefixes of two buffers, writing the `Ma`
/// smallest elements back into `z[..ma]` and the `Mb = Na + Nb - ma`
/// largest into `w[..mb]`.
///
/// * `z[..na]` and `w[..nb]` must each be sorted ascending.
/// * `ma <= na + nb`, `ma <= z.len()`, and `na + nb - ma <= w.len()`
///   (the outputs must fit the buffers).
/// * `scratch` is caller-provided to keep the hot path allocation-free;
///   its capacity grows as needed (a warm scratch never reallocates,
///   and the merge writes into it without zero-initializing).
///
/// Returns the output sizes.
pub fn sort_split<T: Ord + Copy>(
    z: &mut [T],
    na: usize,
    w: &mut [T],
    nb: usize,
    ma: usize,
    scratch: &mut Vec<T>,
) -> SortSplitResult {
    assert!(na <= z.len() && nb <= w.len(), "valid prefix exceeds buffer");
    let total = na + nb;
    assert!(ma <= total, "cannot take more smallest elements than exist");
    let mb = total - ma;
    assert!(ma <= z.len(), "small side does not fit");
    assert!(mb <= w.len(), "large side does not fit");
    debug_assert!(z[..na].windows(2).all(|p| p[0] <= p[1]), "Z not sorted");
    debug_assert!(w[..nb].windows(2).all(|p| p[0] <= p[1]), "W not sorted");

    merge_into_vec(&z[..na], &w[..nb], scratch);

    z[..ma].copy_from_slice(&scratch[..ma]);
    w[..mb].copy_from_slice(&scratch[ma..total]);
    SortSplitResult { ma, mb }
}

/// `SORT_SPLIT` between two *full* batches of equal capacity — the common
/// case in the heapify loops (Alg. 1 line 33, Alg. 3 lines 10/12): `a`
/// keeps the smallest `a.len()` elements, `b` the largest `b.len()`.
pub fn sort_split_full<T: Ord + Copy>(a: &mut [T], b: &mut [T], scratch: &mut Vec<T>) {
    let na = a.len();
    debug_assert!(a.windows(2).all(|p| p[0] <= p[1]), "A not sorted");
    debug_assert!(b.windows(2).all(|p| p[0] <= p[1]), "B not sorted");
    merge_into_vec(a, b, scratch);
    a.copy_from_slice(&scratch[..na]);
    b.copy_from_slice(&scratch[na..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_postconditions_hold() {
        // Z = [1,4,9], W = [2,3,5,8], Ma = 2 (so Mb = 5 must fit in W).
        let mut z = [1u32, 4, 9, 0, 0];
        let mut w = [2u32, 3, 5, 8, 0];
        let mut scratch = Vec::new();
        let r = sort_split(&mut z, 3, &mut w, 4, 2, &mut scratch);
        assert_eq!(r, SortSplitResult { ma: 2, mb: 5 });
        assert_eq!(&z[..2], &[1, 2]);
        assert_eq!(&w[..5], &[3, 4, 5, 8, 9]);
    }

    #[test]
    fn full_node_split() {
        let mut a = [5u32, 6, 7, 8];
        let mut b = [1u32, 2, 3, 4];
        let mut scratch = Vec::new();
        sort_split_full(&mut a, &mut b, &mut scratch);
        assert_eq!(a, [1, 2, 3, 4]);
        assert_eq!(b, [5, 6, 7, 8]);
    }

    #[test]
    fn ma_zero_and_ma_total() {
        let mut z = [1u32, 3];
        let mut w = [2u32, 4, 0, 0];
        let mut scratch = Vec::new();
        let r = sort_split(&mut z, 2, &mut w, 2, 0, &mut scratch);
        assert_eq!((r.ma, r.mb), (0, 4));
        assert_eq!(&w[..4], &[1, 2, 3, 4]);

        let mut z2 = [5u32, 7, 0, 0];
        let mut w2 = [6u32, 8];
        let r2 = sort_split(&mut z2, 2, &mut w2, 2, 4, &mut scratch);
        assert_eq!((r2.ma, r2.mb), (4, 0));
        assert_eq!(&z2[..4], &[5, 6, 7, 8]);
    }

    #[test]
    #[should_panic(expected = "small side does not fit")]
    fn overflow_small_side_panics() {
        let mut z = [1u32, 2];
        let mut w = [3u32, 4];
        let mut scratch = Vec::new();
        sort_split(&mut z, 2, &mut w, 2, 3, &mut scratch);
    }

    #[test]
    fn unequal_sizes() {
        let mut a = [10u32, 20, 30, 40, 50, 60];
        let mut b = [15u32, 35];
        let mut scratch = Vec::new();
        sort_split_full(&mut a, &mut b, &mut scratch);
        assert_eq!(a, [10, 15, 20, 30, 35, 40]);
        assert_eq!(b, [50, 60]);
    }
}
