//! AVX2 kernels: in-register bitonic networks over 8 × `u32` or
//! 4 × `u64` lanes.
//!
//! Shapes (all little networks a CUDA thread block would run across a
//! warp, here folded into one register):
//!
//! * `bmerge16` / `bmerge8` — the bitonic *merge* network: reverse one
//!   sorted register against the other, one min/max stage, then the
//!   distance-4/2/1 (u32) or 2/1 (u64) cleanup stages per register.
//!   This is the inner kernel of the merge loop: keep the high half as
//!   carry, refill the low operand from whichever run's head is
//!   smaller, emit 8 (or 4) sorted lanes per iteration.
//! * `sort8` / `sort4` — the full bitonic *sorting* network inside one
//!   register (the prelude of the long sorts).
//! * `sort_u32` / `sort_u64` — the complete sorting network: register
//!   prelude with alternating directions, vector sweeps for compare
//!   distances at or above the register width, fused in-register
//!   stages below it.
//!
//! `u64` lanes have no unsigned vector compare on AVX2; the kernels
//! bias both operands by `i64::MIN` and use the signed `cmpgt`, which
//! realizes unsigned order. Unaligned loads/stores throughout — node
//! buffers carry no alignment guarantee.
//!
//! Every public shim here is installed in a [`super::Kernels`] table
//! only after `is_x86_feature_detected!("avx2")` succeeded, which makes
//! the `#[target_feature(enable = "avx2")]` calls sound.

#![allow(unsafe_op_in_unsafe_fn)]

use super::KeyIdxLane;
use crate::merge_path::{merge_into as scalar_merge, merge_path_partition};
use core::arch::x86_64::*;

/// Outer-loop chunk width (in lanes) for the Merge Path partition: a
/// chunk that consumes only one run is serviced by a bulk copy, so
/// merges of mostly-disjoint runs (the heapify steady state after a
/// `SORT_SPLIT` cascade) degrade to `memcpy` speed at this
/// granularity.
const CHUNK: usize = 512;

#[inline]
fn assert_avx2() {
    debug_assert!(
        std::arch::is_x86_feature_detected!("avx2"),
        "AVX2 kernel invoked without AVX2 dispatch"
    );
}

// ---------------------------------------------------------------- u32

pub(super) fn merge_u32(a: &[u32], b: &[u32], out: &mut [u32]) {
    assert_avx2();
    merge_path_partition(a, b, CHUNK, |d, ra, rb| {
        let (ca, cb) = (&a[ra], &b[rb]);
        let dst = &mut out[d];
        if cb.is_empty() {
            dst.copy_from_slice(ca);
        } else if ca.is_empty() {
            dst.copy_from_slice(cb);
        } else {
            // SAFETY: dispatch guarantees AVX2 (see assert above).
            unsafe { merge_runs_u32(ca, cb, dst) }
        }
    });
}

pub(super) fn sort_u32(v: &mut [u32]) {
    assert_avx2();
    if v.len() < 8 {
        crate::bitonic::bitonic_sort(v);
        return;
    }
    // SAFETY: dispatch guarantees AVX2.
    unsafe { sort_u32_avx2(v) }
}

/// Vector-loop merge of two sorted runs (both non-empty). Emits 8
/// sorted lanes per iteration while both runs can refill a register;
/// finishes with a scalar three-way merge of the carry register and
/// the run tails.
#[target_feature(enable = "avx2")]
unsafe fn merge_runs_u32(a: &[u32], b: &[u32], out: &mut [u32]) {
    let (m, n) = (a.len(), b.len());
    if m < 8 || n < 8 {
        scalar_merge(a, b, out);
        return;
    }
    let mut va = _mm256_loadu_si256(a.as_ptr().cast());
    let mut vb = _mm256_loadu_si256(b.as_ptr().cast());
    let (mut ia, mut ib, mut o) = (8usize, 8usize, 0usize);
    loop {
        let (lo, hi) = bmerge16(va, vb);
        _mm256_storeu_si256(out.as_mut_ptr().add(o).cast(), lo);
        o += 8;
        va = hi;
        // Refill from the run whose next head is smaller: every element
        // of that next block is <= the other run's remaining elements'
        // upper bound only via the network, which tolerates any sorted
        // refill — the choice just keeps the carry from starving.
        if ia + 8 <= m && ib + 8 <= n {
            if a[ia] <= b[ib] {
                vb = _mm256_loadu_si256(a.as_ptr().add(ia).cast());
                ia += 8;
            } else {
                vb = _mm256_loadu_si256(b.as_ptr().add(ib).cast());
                ib += 8;
            }
        } else {
            break;
        }
    }
    let mut carry = [0u32; 8];
    _mm256_storeu_si256(carry.as_mut_ptr().cast(), va);
    three_way_tail(&carry, &a[ia..], &b[ib..], &mut out[o..]);
}

/// Bitonic merge network over 16 lanes in two registers: `a` and `b`
/// sorted ascending in, (8 smallest sorted, 8 largest sorted) out.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn bmerge16(a: __m256i, b: __m256i) -> (__m256i, __m256i) {
    let rev = _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0);
    let br = _mm256_permutevar8x32_epi32(b, rev);
    // Distance-8 stage: concat(a, reverse(b)) is bitonic; after one
    // min/max each half is bitonic and lower <= upper as sets.
    let lo = _mm256_min_epu32(a, br);
    let hi = _mm256_max_epu32(a, br);
    (bitonic8(lo), bitonic8(hi))
}

/// Clean-up network: sort an 8-lane *bitonic* sequence ascending
/// (distances 4, 2, 1).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn bitonic8(mut x: __m256i) -> __m256i {
    let y = _mm256_permute4x64_epi64(x, 0x4E); // swap 128-bit halves
    x = _mm256_blend_epi32(_mm256_min_epu32(x, y), _mm256_max_epu32(x, y), 0xF0);
    let y = _mm256_shuffle_epi32(x, 0x4E); // distance 2
    x = _mm256_blend_epi32(_mm256_min_epu32(x, y), _mm256_max_epu32(x, y), 0xCC);
    let y = _mm256_shuffle_epi32(x, 0xB1); // distance 1
    x = _mm256_blend_epi32(_mm256_min_epu32(x, y), _mm256_max_epu32(x, y), 0xAA);
    x
}

/// Full in-register bitonic sort of 8 lanes, ascending.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn sort8(mut x: __m256i) -> __m256i {
    // Stage widths 2 and 4 run both directions inside the register
    // (ascending/descending alternate per block); width 8 is the
    // ascending cleanup.
    let y = _mm256_shuffle_epi32(x, 0xB1); // width 2
    x = _mm256_blend_epi32(_mm256_min_epu32(x, y), _mm256_max_epu32(x, y), 0x66);
    let y = _mm256_shuffle_epi32(x, 0x4E); // width 4, distance 2
    x = _mm256_blend_epi32(_mm256_min_epu32(x, y), _mm256_max_epu32(x, y), 0x3C);
    let y = _mm256_shuffle_epi32(x, 0xB1); // width 4, distance 1
    x = _mm256_blend_epi32(_mm256_min_epu32(x, y), _mm256_max_epu32(x, y), 0x5A);
    bitonic8(x)
}

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn reverse8(x: __m256i) -> __m256i {
    _mm256_permutevar8x32_epi32(x, _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0))
}

/// Full bitonic sorting network, vectorized; `v.len()` is a power of
/// two >= 8.
#[target_feature(enable = "avx2")]
unsafe fn sort_u32_avx2(v: &mut [u32]) {
    let n = v.len();
    let p = v.as_mut_ptr();
    // Prelude: each 8-block sorted, directions alternating so every
    // 16-block is bitonic.
    for blk in 0..n / 8 {
        let q = p.add(blk * 8);
        let mut x = sort8(_mm256_loadu_si256(q.cast()));
        if blk & 1 == 1 {
            x = reverse8(x);
        }
        _mm256_storeu_si256(q.cast(), x);
    }
    let mut k = 16usize;
    while k <= n {
        // Distances >= 8: whole-register compare-exchanges. The
        // direction bit (i & k) is uniform across a register because
        // k >= 16 > 8.
        let mut j = k / 2;
        while j >= 8 {
            let mut base = 0usize;
            while base < n {
                let mut i = base;
                while i < base + j {
                    let (qa, qb) = (p.add(i), p.add(i + j));
                    let va = _mm256_loadu_si256(qa.cast());
                    let vb = _mm256_loadu_si256(qb.cast());
                    let mn = _mm256_min_epu32(va, vb);
                    let mx = _mm256_max_epu32(va, vb);
                    if i & k == 0 {
                        _mm256_storeu_si256(qa.cast(), mn);
                        _mm256_storeu_si256(qb.cast(), mx);
                    } else {
                        _mm256_storeu_si256(qa.cast(), mx);
                        _mm256_storeu_si256(qb.cast(), mn);
                    }
                    i += 8;
                }
                base += 2 * j;
            }
            j /= 2;
        }
        // Distances 4, 2, 1: one load/store per block, the cleanup
        // network in-register.
        let mut i = 0usize;
        while i < n {
            let q = p.add(i);
            let x = _mm256_loadu_si256(q.cast());
            let x = if i & k == 0 { bitonic8(x) } else { reverse8(bitonic8(reverse8(x))) };
            _mm256_storeu_si256(q.cast(), x);
            i += 8;
        }
        k *= 2;
    }
}

// ---------------------------------------------------------------- u64

pub(super) fn merge_u64(a: &[u64], b: &[u64], out: &mut [u64]) {
    assert_avx2();
    merge_path_partition(a, b, CHUNK, |d, ra, rb| {
        let (ca, cb) = (&a[ra], &b[rb]);
        let dst = &mut out[d];
        if cb.is_empty() {
            dst.copy_from_slice(ca);
        } else if ca.is_empty() {
            dst.copy_from_slice(cb);
        } else {
            // SAFETY: dispatch guarantees AVX2.
            unsafe { merge_runs_u64(ca, cb, dst) }
        }
    });
}

pub(super) fn sort_u64(v: &mut [u64]) {
    assert_avx2();
    if v.len() < 4 {
        crate::bitonic::bitonic_sort(v);
        return;
    }
    // SAFETY: dispatch guarantees AVX2.
    unsafe { sort_u64_avx2(v) }
}

/// Unsigned 64-bit (min, max): signed compare on sign-biased operands.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn minmax_u64(a: __m256i, b: __m256i) -> (__m256i, __m256i) {
    let s = _mm256_set1_epi64x(i64::MIN);
    let g = _mm256_cmpgt_epi64(_mm256_xor_si256(a, s), _mm256_xor_si256(b, s));
    (_mm256_blendv_epi8(a, b, g), _mm256_blendv_epi8(b, a, g))
}

#[target_feature(enable = "avx2")]
unsafe fn merge_runs_u64(a: &[u64], b: &[u64], out: &mut [u64]) {
    let (m, n) = (a.len(), b.len());
    if m < 4 || n < 4 {
        scalar_merge(a, b, out);
        return;
    }
    let mut va = _mm256_loadu_si256(a.as_ptr().cast());
    let mut vb = _mm256_loadu_si256(b.as_ptr().cast());
    let (mut ia, mut ib, mut o) = (4usize, 4usize, 0usize);
    loop {
        let (lo, hi) = bmerge8(va, vb);
        _mm256_storeu_si256(out.as_mut_ptr().add(o).cast(), lo);
        o += 4;
        va = hi;
        if ia + 4 <= m && ib + 4 <= n {
            if a[ia] <= b[ib] {
                vb = _mm256_loadu_si256(a.as_ptr().add(ia).cast());
                ia += 4;
            } else {
                vb = _mm256_loadu_si256(b.as_ptr().add(ib).cast());
                ib += 4;
            }
        } else {
            break;
        }
    }
    let mut carry = [0u64; 4];
    _mm256_storeu_si256(carry.as_mut_ptr().cast(), va);
    three_way_tail(&carry, &a[ia..], &b[ib..], &mut out[o..]);
}

/// Bitonic merge network over 8 lanes in two registers (4 + 4).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn bmerge8(a: __m256i, b: __m256i) -> (__m256i, __m256i) {
    let br = _mm256_permute4x64_epi64(b, 0x1B); // reverse
    let (lo, hi) = minmax_u64(a, br);
    (bitonic4(lo), bitonic4(hi))
}

/// Sort a 4-lane bitonic sequence ascending (distances 2, 1).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn bitonic4(x: __m256i) -> __m256i {
    let y = _mm256_permute4x64_epi64(x, 0x4E); // distance 2
    let (mn, mx) = minmax_u64(x, y);
    let x = _mm256_blend_epi32(mn, mx, 0xF0);
    let y = _mm256_permute4x64_epi64(x, 0xB1); // distance 1
    let (mn, mx) = minmax_u64(x, y);
    _mm256_blend_epi32(mn, mx, 0xCC)
}

/// Full in-register bitonic sort of 4 lanes, ascending.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn sort4(x: __m256i) -> __m256i {
    // Width-2 stage, directions alternating (asc pair 0-1, desc 2-3).
    let y = _mm256_permute4x64_epi64(x, 0xB1);
    let (mn, mx) = minmax_u64(x, y);
    let x = _mm256_blend_epi32(mn, mx, 0x3C);
    bitonic4(x)
}

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn reverse4(x: __m256i) -> __m256i {
    _mm256_permute4x64_epi64(x, 0x1B)
}

#[target_feature(enable = "avx2")]
unsafe fn sort_u64_avx2(v: &mut [u64]) {
    let n = v.len();
    let p = v.as_mut_ptr();
    for blk in 0..n / 4 {
        let q = p.add(blk * 4);
        let mut x = sort4(_mm256_loadu_si256(q.cast()));
        if blk & 1 == 1 {
            x = reverse4(x);
        }
        _mm256_storeu_si256(q.cast(), x);
    }
    let mut k = 8usize;
    while k <= n {
        let mut j = k / 2;
        while j >= 4 {
            let mut base = 0usize;
            while base < n {
                let mut i = base;
                while i < base + j {
                    let (qa, qb) = (p.add(i), p.add(i + j));
                    let va = _mm256_loadu_si256(qa.cast());
                    let vb = _mm256_loadu_si256(qb.cast());
                    let (mn, mx) = minmax_u64(va, vb);
                    if i & k == 0 {
                        _mm256_storeu_si256(qa.cast(), mn);
                        _mm256_storeu_si256(qb.cast(), mx);
                    } else {
                        _mm256_storeu_si256(qa.cast(), mx);
                        _mm256_storeu_si256(qb.cast(), mn);
                    }
                    i += 4;
                }
                base += 2 * j;
            }
            j /= 2;
        }
        let mut i = 0usize;
        while i < n {
            let q = p.add(i);
            let x = _mm256_loadu_si256(q.cast());
            let x = if i & k == 0 { bitonic4(x) } else { reverse4(bitonic4(reverse4(x))) };
            _mm256_storeu_si256(q.cast(), x);
            i += 4;
        }
        k *= 2;
    }
}

// -------------------------------------------------------- packed lane

pub(super) fn merge_lane(a: &[KeyIdxLane], b: &[KeyIdxLane], out: &mut [KeyIdxLane]) {
    merge_u64(as_u64(a), as_u64(b), as_u64_mut(out));
}

pub(super) fn sort_lane(v: &mut [KeyIdxLane]) {
    sort_u64(as_u64_mut(v));
}

#[inline]
fn as_u64(v: &[KeyIdxLane]) -> &[u64] {
    // SAFETY: KeyIdxLane is repr(transparent) over u64, and its Ord is
    // the u64 order.
    unsafe { core::slice::from_raw_parts(v.as_ptr().cast(), v.len()) }
}

#[inline]
fn as_u64_mut(v: &mut [KeyIdxLane]) -> &mut [u64] {
    // SAFETY: as `as_u64`.
    unsafe { core::slice::from_raw_parts_mut(v.as_mut_ptr().cast(), v.len()) }
}

// ------------------------------------------------------------- shared

/// Scalar three-way merge of the carry register and the two run tails
/// — everything here is >= all previously emitted lanes. Ties prefer
/// carry, then `a`, then `b`; with bare lanes ties are bit-identical
/// and with packed lanes ties cannot occur, so the output equals the
/// scalar oracle's either way.
fn three_way_tail<L: Copy + Ord>(c: &[L], a: &[L], b: &[L], out: &mut [L]) {
    debug_assert_eq!(out.len(), c.len() + a.len() + b.len());
    let (mut i, mut j, mut l) = (0usize, 0usize, 0usize);
    for slot in out.iter_mut() {
        let from_c =
            i < c.len() && (j >= a.len() || c[i] <= a[j]) && (l >= b.len() || c[i] <= b[l]);
        if from_c {
            *slot = c[i];
            i += 1;
        } else if j < a.len() && (l >= b.len() || a[j] <= b[l]) {
            *slot = a[j];
            j += 1;
        } else {
            *slot = b[l];
            l += 1;
        }
    }
}
