//! SIMD node kernels — the CPU analogue of the paper's thread-block
//! data parallelism.
//!
//! On the GPU every node operation is executed by `k` threads in
//! lockstep: a thread block bitonic-sorts a node (§4 "Bitonic sort"),
//! merge-path-merges two nodes (§4 "GPU Merge Path"), and the two
//! compose into `SORT_SPLIT`. On the CPU the same data parallelism
//! maps onto vector lanes: an AVX2 register holds 8 × `u32` or
//! 4 × `u64` keys and a compare-exchange is one `min`/`max` pair —
//! exactly one step of the network a warp executes.
//!
//! This module provides the three kernels over *lane types*
//! ([`VectorKey`]: `u32`, `u64`, and the packed [`KeyIdxLane`]):
//!
//! * [`merge_into`] — Merge Path outer loop (chunked via
//!   [`crate::merge_path::merge_path_partition`]; pure-run chunks are
//!   bulk copies) around an in-register 8/16-lane bitonic *merge
//!   network* inner kernel;
//! * [`bitonic_sort`] — the full bitonic sorting network with
//!   in-register stages for compare distances below the register width
//!   and vectorized sweeps above it;
//! * [`sort_split`] / [`sort_split_full`] — merge + split, the node
//!   operation itself.
//!
//! # Runtime dispatch
//!
//! Kernel selection happens once per process: `is_x86_feature_detected!
//! ("avx2")` combined with the `BGPQ_FORCE_SCALAR` environment variable
//! (any value other than `0`/empty pins the scalar kernels) and the
//! `force-scalar` cargo feature. The result is cached; every call site
//! goes through a per-type table of function pointers ([`Kernels`]),
//! so the steady-state overhead is one relaxed atomic load. The scalar
//! kernels are the generic implementations from [`crate::merge_path`] /
//! [`crate::bitonic`] — always available (non-x86_64 builds compile to
//! them unconditionally) and used as differential oracles by the
//! proptest suites.
//!
//! # Stability
//!
//! For bare `u32`/`u64` lanes equal keys are bit-identical, so any
//! correct merge is stable. Payload-carrying callers (the heap's
//! `Entry<K, V>` nodes) get *exact* stability through [`KeyIdxLane`]:
//! key in the high 32 bits, source index in the low 32, making every
//! lane distinct — the network's output order on lanes is then the
//! unique stable merge order on (key, index). See `bgpq`'s SoA scratch
//! path for the full key-lane / value-permutation pipeline.

mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;

use crate::sort_split::SortSplitResult;
use core::sync::atomic::{AtomicU8, Ordering};

/// How the process resolved kernel dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Generic scalar kernels (fallback and differential oracle).
    Scalar,
    /// AVX2 vector kernels (x86_64 with runtime-detected support).
    Avx2,
}

const MODE_UNINIT: u8 = 0;
const MODE_SCALAR: u8 = 1;
const MODE_AVX2: u8 = 2;

/// Cached dispatch decision. 0 = not yet resolved.
static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);

fn detect_mode() -> u8 {
    if cfg!(feature = "force-scalar") {
        return MODE_SCALAR;
    }
    match std::env::var("BGPQ_FORCE_SCALAR") {
        Ok(v) if !v.is_empty() && v != "0" => return MODE_SCALAR,
        _ => {}
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return MODE_AVX2;
        }
    }
    MODE_SCALAR
}

#[inline]
fn mode_u8() -> u8 {
    let m = MODE.load(Ordering::Relaxed);
    if m != MODE_UNINIT {
        return m;
    }
    let resolved = detect_mode();
    // Racing initializers compute the same value; last store wins.
    MODE.store(resolved, Ordering::Relaxed);
    resolved
}

/// The dispatch mode in effect (resolving it on first use).
pub fn dispatch_mode() -> DispatchMode {
    match mode_u8() {
        MODE_AVX2 => DispatchMode::Avx2,
        _ => DispatchMode::Scalar,
    }
}

/// True when the vector kernels are selected. Hot-path callers use
/// this to decide whether packing keys into lanes will pay off.
#[inline]
pub fn vector_enabled() -> bool {
    mode_u8() == MODE_AVX2
}

/// Pin dispatch to the scalar kernels (`true`) or re-resolve from the
/// environment and CPU features (`false`). Process-global; meant for
/// tests and tools that compare both paths in one process — production
/// configuration goes through `BGPQ_FORCE_SCALAR` instead.
pub fn set_forced_scalar(forced: bool) {
    if forced {
        MODE.store(MODE_SCALAR, Ordering::Relaxed);
    } else {
        MODE.store(detect_mode(), Ordering::Relaxed);
    }
}

/// Serializes in-crate tests that flip the dispatch override: the mode
/// is process-global and the test harness is multi-threaded, so any
/// test calling [`set_forced_scalar`] must hold this for its duration.
#[cfg(test)]
pub(crate) static TEST_DISPATCH_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Per-lane-type kernel table. The statics these point into are
/// resolved once (see module docs); callers fetch the table and invoke
/// through the function pointers.
pub struct Kernels<L: 'static> {
    /// Merge sorted `a` and `b` into `out` (`out.len() == a.len() +
    /// b.len()`), stable (`a` wins ties).
    pub merge: fn(a: &[L], b: &[L], out: &mut [L]),
    /// Sort `v` ascending; `v.len()` must be a power of two.
    pub sort: fn(v: &mut [L]),
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for super::KeyIdxLane {}
}

/// A lane type the vector kernels understand: `u32` (16-lane network),
/// `u64` (8-lane network), and [`KeyIdxLane`] (packed key|index, rides
/// the `u64` network). Sealed — the kernels are written per width, not
/// per type.
pub trait VectorKey: sealed::Sealed + Copy + Ord + Send + Sync + 'static {
    /// The kernel table for the current dispatch mode.
    fn kernels() -> &'static Kernels<Self>
    where
        Self: Sized;
}

impl VectorKey for u32 {
    #[inline]
    fn kernels() -> &'static Kernels<u32> {
        static SCALAR: Kernels<u32> =
            Kernels { merge: scalar::merge_chunked::<u32>, sort: scalar::sort::<u32> };
        #[cfg(target_arch = "x86_64")]
        {
            static AVX2: Kernels<u32> = Kernels { merge: avx2::merge_u32, sort: avx2::sort_u32 };
            if vector_enabled() {
                return &AVX2;
            }
        }
        &SCALAR
    }
}

impl VectorKey for u64 {
    #[inline]
    fn kernels() -> &'static Kernels<u64> {
        static SCALAR: Kernels<u64> =
            Kernels { merge: scalar::merge_chunked::<u64>, sort: scalar::sort::<u64> };
        #[cfg(target_arch = "x86_64")]
        {
            static AVX2: Kernels<u64> = Kernels { merge: avx2::merge_u64, sort: avx2::sort_u64 };
            if vector_enabled() {
                return &AVX2;
            }
        }
        &SCALAR
    }
}

/// Packed (key, source index) lane: key in the high 32 bits, index in
/// the low 32. Plain `u64` comparison orders by key first, then by
/// index — so runs packed with ascending indices (`a` before `b`)
/// merge *exactly* stably, and the index doubles as the value
/// permutation the caller applies afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct KeyIdxLane(pub u64);

impl KeyIdxLane {
    /// Pack a 32-bit order-preserving key encoding with a source index.
    #[inline]
    pub fn pack(key_lane: u32, idx: u32) -> Self {
        KeyIdxLane(((key_lane as u64) << 32) | idx as u64)
    }

    /// The key encoding (high 32 bits).
    #[inline]
    pub fn key_lane(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The source index (low 32 bits).
    #[inline]
    pub fn idx(self) -> u32 {
        self.0 as u32
    }
}

impl VectorKey for KeyIdxLane {
    #[inline]
    fn kernels() -> &'static Kernels<KeyIdxLane> {
        static SCALAR: Kernels<KeyIdxLane> = Kernels {
            merge: scalar::merge_chunked::<KeyIdxLane>,
            sort: scalar::sort::<KeyIdxLane>,
        };
        #[cfg(target_arch = "x86_64")]
        {
            // repr(transparent) over u64 with the same Ord: the u64
            // kernels apply verbatim.
            static AVX2: Kernels<KeyIdxLane> =
                Kernels { merge: avx2::merge_lane, sort: avx2::sort_lane };
            if vector_enabled() {
                return &AVX2;
            }
        }
        &SCALAR
    }
}

/// Dispatched merge of sorted lane runs: stable (`a` wins ties),
/// `out.len() == a.len() + b.len()`. Semantically identical to
/// [`crate::merge_into`]; on AVX2 hosts the inner kernel is an
/// in-register bitonic merge network fed by the Merge Path outer loop.
pub fn merge_into<L: VectorKey>(a: &[L], b: &[L], out: &mut [L]) {
    assert_eq!(out.len(), a.len() + b.len(), "output size mismatch");
    (L::kernels().merge)(a, b, out);
}

/// Dispatched bitonic sort of a power-of-two lane run, ascending.
/// Semantically identical to [`crate::bitonic_sort`].
pub fn bitonic_sort<L: VectorKey>(v: &mut [L]) {
    assert!(crate::bitonic::is_power_of_two(v.len()), "bitonic sort needs a power-of-two length");
    (L::kernels().sort)(v);
}

/// Dispatched `SORT_SPLIT` over lane runs — same contract as
/// [`fn@crate::sort_split`], built on the dispatched merge.
pub fn sort_split<L: VectorKey>(
    z: &mut [L],
    na: usize,
    w: &mut [L],
    nb: usize,
    ma: usize,
    scratch: &mut Vec<L>,
) -> SortSplitResult {
    assert!(na <= z.len() && nb <= w.len(), "valid prefix exceeds buffer");
    let total = na + nb;
    assert!(ma <= total, "cannot take more smallest elements than exist");
    let mb = total - ma;
    assert!(ma <= z.len(), "small side does not fit");
    assert!(mb <= w.len(), "large side does not fit");

    if total == 0 {
        return SortSplitResult { ma: 0, mb: 0 };
    }
    // Warm scratch: grow-and-fill once, then only the `..total` prefix
    // is rewritten per call (the merge fully overwrites it).
    if scratch.len() < total {
        let fill = z[..na].first().copied().unwrap_or_else(|| w[0]);
        scratch.resize(total, fill);
    }
    (L::kernels().merge)(&z[..na], &w[..nb], &mut scratch[..total]);
    z[..ma].copy_from_slice(&scratch[..ma]);
    w[..mb].copy_from_slice(&scratch[ma..total]);
    SortSplitResult { ma, mb }
}

/// Dispatched `SORT_SPLIT` between two full lane runs (`a` keeps the
/// smallest `a.len()`, `b` the largest `b.len()`) — the
/// [`crate::sort_split_full`] shape.
pub fn sort_split_full<L: VectorKey>(a: &mut [L], b: &mut [L], scratch: &mut Vec<L>) {
    let na = a.len();
    let nb = b.len();
    sort_split(a, na, b, nb, na, scratch);
}

/// Prefetch the cache line at `p` into all cache levels. A hint only:
/// no memory access happens at the abstract-machine level, so this is
/// safe to call on any address, including memory owned by another
/// thread. Compiles to nothing off x86_64.
#[inline]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch has no observable memory effect; any pointer
    // value (valid or not) is permitted by the instruction.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Like [`prefetch_read`] but with an L2 hint (`T1`): for bulk
/// prefetch of whole nodes that will be *streamed* shortly — pulling
/// 8&nbsp;KiB+ into L1 would evict the working set, L2 is where a
/// subsequent sequential merge wants it.
#[inline]
pub fn prefetch_read_l2<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: as for `prefetch_read`.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T1 }>(p as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0-1 principle: a comparison network sorts all inputs iff it
    /// sorts all 0-1 inputs. The vector sorts are oblivious networks,
    /// so exhausting the 2^n binary patterns at small n proves the
    /// shuffle/blend masks outright.
    #[test]
    fn zero_one_principle_u32() {
        for n in [8usize, 16] {
            for pattern in 0u32..(1 << n) {
                let mut v: Vec<u32> = (0..n).map(|i| (pattern >> i) & 1).collect();
                let mut expect = v.clone();
                expect.sort_unstable();
                bitonic_sort(&mut v);
                assert_eq!(v, expect, "n={n} pattern={pattern:b}");
            }
        }
    }

    #[test]
    fn zero_one_principle_u64() {
        for n in [4usize, 8, 16] {
            for pattern in 0u32..(1 << n) {
                let mut v: Vec<u64> = (0..n).map(|i| ((pattern >> i) & 1) as u64).collect();
                let mut expect = v.clone();
                expect.sort_unstable();
                bitonic_sort(&mut v);
                assert_eq!(v, expect, "n={n} pattern={pattern:b}");
            }
        }
    }

    #[test]
    fn sort_matches_std_across_sizes() {
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for n in [1usize, 2, 4, 8, 32, 128, 1024, 4096] {
            let v32: Vec<u32> = (0..n).map(|_| next() as u32).collect();
            let mut got = v32.clone();
            bitonic_sort(&mut got);
            let mut expect = v32;
            expect.sort_unstable();
            assert_eq!(got, expect, "u32 n={n}");

            let v64: Vec<u64> = (0..n).map(|_| next()).collect();
            let mut got = v64.clone();
            bitonic_sort(&mut got);
            let mut expect = v64;
            expect.sort_unstable();
            assert_eq!(got, expect, "u64 n={n}");
        }
    }

    #[test]
    fn merge_matches_scalar_oracle() {
        let mut x = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for (m, n) in [(0, 5), (5, 0), (1, 1), (7, 9), (8, 8), (100, 3), (1024, 1024), (777, 41)] {
            let mut a: Vec<u32> = (0..m).map(|_| (next() % 997) as u32).collect();
            let mut b: Vec<u32> = (0..n).map(|_| (next() % 997) as u32).collect();
            a.sort_unstable();
            b.sort_unstable();
            let mut got = vec![0u32; m + n];
            let mut expect = vec![0u32; m + n];
            merge_into(&a, &b, &mut got);
            crate::merge_path::merge_into_scalar(&a, &b, &mut expect);
            assert_eq!(got, expect, "u32 m={m} n={n}");

            let a64: Vec<u64> = a.iter().map(|&v| (v as u64) << 33).collect();
            let b64: Vec<u64> = b.iter().map(|&v| (v as u64) << 33).collect();
            let mut got = vec![0u64; m + n];
            let mut expect = vec![0u64; m + n];
            merge_into(&a64, &b64, &mut got);
            crate::merge_path::merge_into_scalar(&a64, &b64, &mut expect);
            assert_eq!(got, expect, "u64 m={m} n={n}");
        }
    }

    #[test]
    fn packed_lane_merge_is_exactly_stable() {
        // Duplicate keys across both runs; indices make lanes distinct,
        // so the merged index order must be the stable order: a's
        // occurrences (ascending index) before b's.
        let a: Vec<KeyIdxLane> =
            (0..64).map(|i| KeyIdxLane::pack((i / 8) as u32, i as u32)).collect();
        let b: Vec<KeyIdxLane> =
            (0..64).map(|i| KeyIdxLane::pack((i / 8) as u32, 64 + i as u32)).collect();
        let mut got = vec![KeyIdxLane::default(); 128];
        merge_into(&a, &b, &mut got);
        let mut expect = vec![KeyIdxLane::default(); 128];
        crate::merge_path::merge_into_scalar(&a, &b, &mut expect);
        assert_eq!(got, expect);
        // Within each key, indices ascend and a-side (< 64) precede
        // b-side (>= 64).
        for w in got.windows(2) {
            if w[0].key_lane() == w[1].key_lane() {
                assert!(w[0].idx() < w[1].idx());
            }
        }
    }

    #[test]
    fn sort_split_matches_generic() {
        let mut z: Vec<u32> = (0..1024).map(|i| i * 3 % 2048).collect();
        let mut w: Vec<u32> = (0..1024).map(|i| i * 7 % 2048).collect();
        z.sort_unstable();
        w.sort_unstable();
        let (mut z2, mut w2) = (z.clone(), w.clone());
        let mut s1 = Vec::new();
        let mut s2 = Vec::new();
        let r1 = sort_split(&mut z, 1024, &mut w, 1024, 1024, &mut s1);
        let r2 = crate::sort_split::sort_split(&mut z2, 1024, &mut w2, 1024, 1024, &mut s2);
        assert_eq!((r1.ma, r1.mb), (r2.ma, r2.mb));
        assert_eq!(z, z2);
        assert_eq!(w, w2);
    }

    #[test]
    fn forced_scalar_roundtrip() {
        let _serial = TEST_DISPATCH_LOCK.lock().unwrap();
        let detected = dispatch_mode();
        set_forced_scalar(true);
        assert_eq!(dispatch_mode(), DispatchMode::Scalar);
        assert!(!vector_enabled());
        // Kernels still correct in scalar mode.
        let a = [1u32, 3, 5, 7];
        let b = [2u32, 4, 6, 8];
        let mut out = [0u32; 8];
        merge_into(&a, &b, &mut out);
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 7, 8]);
        set_forced_scalar(false);
        assert_eq!(dispatch_mode(), detected);
    }
}
