//! Scalar kernel table entries: thin shims over the generic kernels in
//! [`crate::merge_path`] and [`crate::bitonic`]. These are the
//! always-available fallback *and* the differential oracles the SIMD
//! proptests compare against — they must stay semantically identical
//! to the vector kernels (stable merge, ascending network sort).

pub(super) fn merge_chunked<L: Copy + Ord>(a: &[L], b: &[L], out: &mut [L]) {
    crate::merge_path::merge_into(a, b, out);
}

pub(super) fn sort<L: Copy + Ord>(v: &mut [L]) {
    crate::bitonic::bitonic_sort(v);
}
