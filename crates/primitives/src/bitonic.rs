//! Bitonic sorting network.
//!
//! The network is executed exactly as a CUDA thread block would run it:
//! `log2(n) * (log2(n)+1) / 2` *steps*, where step `(k, j)` performs `n/2`
//! independent compare-exchange operations. A GPU block of `t` threads
//! executes each step in `ceil(n/2 / t)` lock-step rounds followed by a
//! block-wide barrier — those counts are what [`crate::cost::CostModel`]
//! charges. On the CPU we run the compare-exchanges of a step in their
//! schedule order; since they are independent within a step, the result
//! is identical to the parallel execution.

/// True if `n` is a power of two (and nonzero).
#[inline]
pub const fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// Number of compare-exchange *steps* in the network for `n` elements
/// (`n` a power of two): `log2(n) * (log2(n) + 1) / 2`.
pub fn step_count(n: usize) -> u32 {
    assert!(is_power_of_two(n), "bitonic network requires power-of-two size");
    let lg = n.trailing_zeros();
    lg * (lg + 1) / 2
}

/// Sort `data` ascending with the bitonic network. Panics unless
/// `data.len()` is a power of two (use [`bitonic_sort_padded`] otherwise).
///
/// The compare-exchange is branchless: whether a pair swaps is a
/// data-dependent coin flip on random input, so instead of a
/// mispredictable `if` both slots are written unconditionally through a
/// select on the swap bit — the form that compiles to conditional
/// moves, exactly like the predicated min/max a GPU lane executes.
/// [`bitonic_sort_scalar`] keeps the branchy form as the
/// differential-test oracle.
pub fn bitonic_sort<T: Ord + Copy>(data: &mut [T]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    assert!(is_power_of_two(n), "bitonic network requires power-of-two size");

    // Outer loop: bitonic merge stages of width k = 2, 4, ..., n.
    let mut k = 2;
    while k <= n {
        // Inner loop: compare distance j = k/2, k/4, ..., 1.
        let mut j = k / 2;
        while j > 0 {
            // One network step: n/2 independent compare-exchanges. This
            // is the body a CUDA kernel runs between __syncthreads().
            for i in 0..n {
                let partner = i ^ j;
                if partner > i {
                    // Ascending block if the k-bit of i is 0.
                    let ascending = i & k == 0;
                    // SAFETY: i < n and partner = i ^ j < n because j < k
                    // <= n and n is a power of two (xor cannot set a bit
                    // at or above log2(n)).
                    unsafe {
                        let a = *data.get_unchecked(i);
                        let b = *data.get_unchecked(partner);
                        let swap = (a > b) == ascending;
                        *data.get_unchecked_mut(i) = if swap { b } else { a };
                        *data.get_unchecked_mut(partner) = if swap { a } else { b };
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
}

/// The same network with the textbook branchy compare-exchange. Kept as
/// the differential-test oracle for [`bitonic_sort`]; not used on hot
/// paths.
pub fn bitonic_sort_scalar<T: Ord + Copy>(data: &mut [T]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    assert!(is_power_of_two(n), "bitonic network requires power-of-two size");
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j > 0 {
            for i in 0..n {
                let partner = i ^ j;
                if partner > i {
                    let ascending = i & k == 0;
                    let (a, b) = (data[i], data[partner]);
                    if (a > b) == ascending {
                        data[i] = b;
                        data[partner] = a;
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
}

/// Sort an arbitrary-length slice by padding to the next power of two
/// with `pad` (which must compare `>=` every element, e.g. the key
/// sentinel). This mirrors how the CUDA implementation pads
/// shared-memory tiles with `+inf` keys.
pub fn bitonic_sort_padded<T: Ord + Copy>(data: &mut [T], pad: T) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    if is_power_of_two(n) {
        bitonic_sort(data);
        return;
    }
    let full = n.next_power_of_two();
    let mut buf = Vec::with_capacity(full);
    buf.extend_from_slice(data);
    buf.resize(full, pad);
    bitonic_sort(&mut buf);
    data.copy_from_slice(&buf[..n]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_small_powers_of_two() {
        for n in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024] {
            let mut v: Vec<u32> = (0..n as u32).rev().collect();
            bitonic_sort(&mut v);
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "n={n}");
        }
    }

    #[test]
    fn sorts_with_duplicates() {
        let mut v = vec![5u32, 5, 1, 1, 3, 3, 2, 2];
        bitonic_sort(&mut v);
        assert_eq!(v, vec![1, 1, 2, 2, 3, 3, 5, 5]);
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two() {
        let mut v = vec![3u32, 1, 2];
        bitonic_sort(&mut v);
    }

    #[test]
    fn padded_handles_any_length() {
        for n in [0usize, 1, 3, 5, 7, 100, 1000, 1023] {
            let mut v: Vec<u32> = (0..n as u32).rev().map(|x| x.wrapping_mul(2654435761)).collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            bitonic_sort_padded(&mut v, u32::MAX);
            assert_eq!(v, expect, "n={n}");
        }
    }

    #[test]
    fn branchless_network_matches_scalar_oracle() {
        for n in [2usize, 4, 8, 64, 256] {
            let mut v: Vec<u32> = (0..n as u32).map(|x| x.wrapping_mul(2654435761) % 97).collect();
            let mut oracle = v.clone();
            bitonic_sort(&mut v);
            bitonic_sort_scalar(&mut oracle);
            assert_eq!(v, oracle, "n={n}");
        }
    }

    #[test]
    fn step_counts_match_formula() {
        assert_eq!(step_count(2), 1);
        assert_eq!(step_count(4), 3);
        assert_eq!(step_count(8), 6);
        assert_eq!(step_count(1024), 55);
    }
}
