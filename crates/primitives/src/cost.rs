//! GPU cycle-cost model for the primitives.
//!
//! The virtual-time simulator needs to know how long a thread block of
//! `t` threads takes to execute each primitive on a batch of `n`
//! elements. The formulas below follow directly from the algorithms'
//! lock-step schedules:
//!
//! * **Bitonic sort** of `n` keys: `lg(n)·(lg(n)+1)/2` network steps;
//!   each step is `ceil((n/2)/t)` rounds of a shared-memory
//!   compare-exchange plus one block barrier. More threads ⇒ fewer
//!   rounds per step (intra-node data parallelism, Fig. 6a/6b), but each
//!   barrier costs more with more warps (the paper's "a large thread
//!   block size can increase the overhead of synchronization").
//! * **Merge path** of `n` total elements: one diagonal binary search per
//!   thread (`lg n` shared reads) + `ceil(n/t)` sequential merge steps +
//!   two barriers.
//! * **Global memory** node transfers: a warp loading consecutive keys is
//!   one coalesced transaction; a node of `n` elements moved by `t`
//!   threads costs one latency plus `ceil(n/t)` issue rounds, each round
//!   issuing `t/32` concurrent transactions (charged at the per-warp
//!   throughput cost).
//!
//! The constants are order-of-magnitude CUDA values (shared ≈ registers ≪
//! global; barrier tens of cycles; atomic ≈ global round trip). The
//! *shape* of every reproduced figure depends on the formulas, not the
//! constants; `CostModel::default()` documents the calibration used for
//! EXPERIMENTS.md.
//!
//! ## The cost model is independent of host kernel dispatch
//!
//! These formulas price the *simulated device's* lock-step execution:
//! a `SortSplit { na, nb }` charge depends only on the operand shape
//! and the block width, never on how the host happened to compute the
//! result. The SIMD dispatch layer (`crate::simd`) swaps AVX2 kernels
//! for the scalar fallbacks to make the *host* faster, but both produce
//! identical output and charge identical `PrimitiveCost` values — so
//! simulated virtual time, and every figure derived from it, is
//! bit-for-bit reproducible across hosts and across `BGPQ_FORCE_SCALAR`
//! settings. The `costs_are_dispatch_independent` test pins this down.

/// Which sorting network/algorithm a batch sort uses (§4 names all
/// three as the available GPU primitives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortAlgo {
    /// Bitonic sorting network (the paper's choice).
    #[default]
    Bitonic,
    /// Pairwise merge rounds built on merge path.
    MergeSort,
    /// 8-bit-digit LSD radix sort (count/scan/scatter per pass).
    Radix { rank_bits: u32 },
}

/// A primitive operation whose virtual-time cost the platform charges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimitiveCost {
    /// Bitonic-sort `n` elements in shared memory.
    Sort { n: usize },
    /// Sort `n` elements with an explicit algorithm choice.
    SortWith { n: usize, algo: SortAlgo },
    /// Merge-path merge totalling `n` elements.
    Merge { n: usize },
    /// `SORT_SPLIT` of two batches with `na + nb` total elements.
    SortSplit { na: usize, nb: usize },
    /// Coalesced global-memory read of `n` elements.
    GlobalRead { n: usize },
    /// Coalesced global-memory write of `n` elements.
    GlobalWrite { n: usize },
    /// One global atomic operation (lock word CAS, state update).
    Atomic,
    /// `ops` plain ALU operations per thread.
    Compute { ops: u64 },
    /// One spin-wait backoff iteration.
    SpinIter,
    /// Kernel-launch / block-dispatch overhead.
    Dispatch,
}

/// Cycle-cost parameters for a simulated GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Threads per warp (32 on every shipped NVIDIA part).
    pub warp_size: u32,
    /// Cycles per ALU op.
    pub c_compute: u64,
    /// Cycles per shared-memory access.
    pub c_shared: u64,
    /// One-time global-memory latency per bulk transfer.
    pub c_global_latency: u64,
    /// Cycles per coalesced 32-wide transaction round.
    pub c_global_round: u64,
    /// Barrier base cost.
    pub c_sync_base: u64,
    /// Barrier cost added per resident warp (makes very wide blocks pay
    /// for synchronization, per §6.2).
    pub c_sync_per_warp: u64,
    /// Global atomic (lock CAS / state flag) round trip.
    pub c_atomic: u64,
    /// One spin-loop iteration (re-check of a flag).
    pub c_spin: u64,
    /// Per-block dispatch overhead of a kernel launch.
    pub c_dispatch: u64,
    /// Simulated SM clock in GHz — converts cycles to milliseconds for
    /// table output.
    pub clock_ghz: f64,
}

impl Default for CostModel {
    /// Calibrated loosely against a TITAN X (Pascal): ~1.4 GHz SM clock,
    /// ~400-cycle global latency, single-cycle-ish shared/ALU throughput.
    fn default() -> Self {
        Self {
            warp_size: 32,
            c_compute: 1,
            c_shared: 2,
            c_global_latency: 400,
            c_global_round: 16,
            c_sync_base: 20,
            c_sync_per_warp: 1,
            c_atomic: 200,
            c_spin: 40,
            c_dispatch: 600,
            clock_ghz: 1.4,
        }
    }
}

impl CostModel {
    /// Cost of one block-wide barrier for `t` threads.
    #[inline]
    pub fn sync(&self, t: u32) -> u64 {
        let warps = u64::from(t.div_ceil(self.warp_size));
        self.c_sync_base + self.c_sync_per_warp * warps
    }

    /// ceil(log2(n)), with lg(0|1) = 0.
    #[inline]
    fn lg(n: usize) -> u64 {
        if n <= 1 {
            0
        } else {
            u64::from(usize::BITS - (n - 1).leading_zeros())
        }
    }

    /// Bitonic sort of `n` elements by a `t`-thread block.
    pub fn bitonic_sort_cycles(&self, n: usize, t: u32) -> u64 {
        if n <= 1 {
            return 0;
        }
        let n_pow2 = n.next_power_of_two();
        let lg = Self::lg(n_pow2);
        let steps = lg * (lg + 1) / 2;
        let cmps_per_step = (n_pow2 / 2) as u64;
        let rounds = cmps_per_step.div_ceil(u64::from(t.max(1)));
        // Each compare-exchange: 2 shared reads + compare + 2 shared
        // writes (worst case).
        let per_round = 4 * self.c_shared + self.c_compute;
        steps * (rounds * per_round + self.sync(t))
    }

    /// Merge-path merge totalling `n` output elements by `t` threads.
    pub fn merge_cycles(&self, n: usize, t: u32) -> u64 {
        if n == 0 {
            return 0;
        }
        let search = Self::lg(n) * (self.c_shared + self.c_compute);
        let per_thread = (n as u64).div_ceil(u64::from(t.max(1)));
        let merge = per_thread * (2 * self.c_shared + self.c_compute);
        search + merge + 2 * self.sync(t)
    }

    /// Merge sort of `n` elements: `ceil(log2 n)` rounds, each a full
    /// merge-path pass over the data plus a barrier.
    pub fn merge_sort_cycles(&self, n: usize, t: u32) -> u64 {
        if n <= 1 {
            return 0;
        }
        let rounds = Self::lg(n);
        rounds * self.merge_cycles(n, t)
    }

    /// LSD radix sort: `rank_bits/8` passes, each pass a histogram
    /// round, a 256-bucket scan, and a scatter round, with barriers
    /// between stages. Scatters to shared memory are bank-conflicted,
    /// charged at 2x the shared cost.
    pub fn radix_sort_cycles(&self, n: usize, rank_bits: u32, t: u32) -> u64 {
        if n <= 1 {
            return 0;
        }
        let passes = u64::from(rank_bits.div_ceil(8));
        let per_thread = (n as u64).div_ceil(u64::from(t.max(1)));
        let histogram = per_thread * (self.c_shared + self.c_compute);
        let scan = 8 * (self.c_shared + self.c_compute); // 256-wide scan, log2 steps
        let scatter = per_thread * (3 * self.c_shared + self.c_compute);
        passes * (histogram + scan + scatter + 3 * self.sync(t))
    }

    /// Cost of a batch sort with the given algorithm.
    pub fn sort_cycles(&self, n: usize, algo: SortAlgo, t: u32) -> u64 {
        match algo {
            SortAlgo::Bitonic => self.bitonic_sort_cycles(n, t),
            SortAlgo::MergeSort => self.merge_sort_cycles(n, t),
            SortAlgo::Radix { rank_bits } => self.radix_sort_cycles(n, rank_bits, t),
        }
    }

    /// `SORT_SPLIT` = one merge-path pass plus the split write-back.
    pub fn sort_split_cycles(&self, na: usize, nb: usize, t: u32) -> u64 {
        let n = na + nb;
        let writeback = (n as u64).div_ceil(u64::from(t.max(1))) * self.c_shared;
        self.merge_cycles(n, t) + writeback + self.sync(t)
    }

    /// Coalesced bulk transfer of `n` elements between global memory and
    /// shared memory/registers.
    pub fn global_transfer_cycles(&self, n: usize, t: u32) -> u64 {
        if n == 0 {
            return 0;
        }
        let rounds = (n as u64).div_ceil(u64::from(t.max(1)));
        self.c_global_latency + rounds * self.c_global_round
    }

    /// Total cycle cost of a [`PrimitiveCost`] executed by a `t`-thread
    /// block.
    pub fn cycles(&self, cost: PrimitiveCost, t: u32) -> u64 {
        match cost {
            PrimitiveCost::Sort { n } => self.bitonic_sort_cycles(n, t),
            PrimitiveCost::SortWith { n, algo } => self.sort_cycles(n, algo, t),
            PrimitiveCost::Merge { n } => self.merge_cycles(n, t),
            PrimitiveCost::SortSplit { na, nb } => self.sort_split_cycles(na, nb, t),
            PrimitiveCost::GlobalRead { n } | PrimitiveCost::GlobalWrite { n } => {
                self.global_transfer_cycles(n, t)
            }
            PrimitiveCost::Atomic => self.c_atomic,
            PrimitiveCost::Compute { ops } => ops * self.c_compute,
            PrimitiveCost::SpinIter => self.c_spin,
            PrimitiveCost::Dispatch => self.c_dispatch,
        }
    }

    /// Convert a cycle count to milliseconds at the simulated clock.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        (cycles as f64) / (self.clock_ghz * 1e9) * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_threads_speed_up_sorting_until_saturation() {
        let m = CostModel::default();
        let slow = m.bitonic_sort_cycles(1024, 32);
        let mid = m.bitonic_sort_cycles(1024, 128);
        let fast = m.bitonic_sort_cycles(1024, 512);
        assert!(slow > mid && mid > fast, "{slow} > {mid} > {fast}");
    }

    #[test]
    fn oversized_blocks_pay_sync_overhead() {
        let m = CostModel::default();
        // Sorting a small batch with a huge block: all the parallelism is
        // exhausted, so the wider barrier must make it slower.
        let right_sized = m.bitonic_sort_cycles(64, 32);
        let oversized = m.bitonic_sort_cycles(64, 1024);
        assert!(oversized > right_sized, "{oversized} <= {right_sized}");
    }

    #[test]
    fn bigger_batches_cost_more() {
        let m = CostModel::default();
        for t in [32u32, 128, 512] {
            assert!(m.merge_cycles(2048, t) > m.merge_cycles(512, t));
            assert!(m.bitonic_sort_cycles(2048, t) > m.bitonic_sort_cycles(512, t));
            assert!(m.global_transfer_cycles(2048, t) > m.global_transfer_cycles(512, t));
        }
    }

    #[test]
    fn zero_sized_ops_are_free() {
        let m = CostModel::default();
        assert_eq!(m.bitonic_sort_cycles(0, 128), 0);
        assert_eq!(m.merge_cycles(0, 128), 0);
        assert_eq!(m.global_transfer_cycles(0, 128), 0);
    }

    #[test]
    fn cycles_dispatch_matches_direct_calls() {
        let m = CostModel::default();
        assert_eq!(m.cycles(PrimitiveCost::Sort { n: 256 }, 128), m.bitonic_sort_cycles(256, 128));
        assert_eq!(m.cycles(PrimitiveCost::Atomic, 128), m.c_atomic);
        assert_eq!(m.cycles(PrimitiveCost::Compute { ops: 7 }, 128), 7 * m.c_compute);
    }

    #[test]
    fn costs_are_dispatch_independent() {
        // Simulated-device costs price the device's schedule, not the
        // host's instruction set: flipping the host kernel dispatch must
        // not move a single cycle.
        let _serial = crate::simd::TEST_DISPATCH_LOCK.lock().unwrap();
        let m = CostModel::default();
        let shapes = [(0usize, 0usize), (1, 0), (64, 64), (1000, 24), (1024, 1024)];
        let probe = |m: &CostModel| {
            let mut v = Vec::new();
            for &(na, nb) in &shapes {
                for t in [32u32, 128, 512] {
                    v.push(m.sort_split_cycles(na, nb, t));
                    v.push(m.bitonic_sort_cycles(na + nb, t));
                    v.push(m.cycles(PrimitiveCost::SortSplit { na, nb }, t));
                    v.push(m.cycles(PrimitiveCost::Sort { n: na + nb }, t));
                }
            }
            v
        };
        let native = probe(&m);
        crate::simd::set_forced_scalar(true);
        let forced = probe(&m);
        crate::simd::set_forced_scalar(false);
        assert_eq!(native, forced, "cost model must not depend on host SIMD dispatch");
    }

    #[test]
    fn ms_conversion() {
        let m = CostModel::default();
        let ms = m.cycles_to_ms(1_400_000);
        assert!((ms - 1.0).abs() < 1e-9, "1.4M cycles at 1.4GHz = 1ms, got {ms}");
    }
}
