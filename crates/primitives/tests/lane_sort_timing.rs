//! Not a correctness test: `cargo test -p bgpq-gpu-primitives --release
//! --test lane_sort_timing -- --ignored --nocapture` compares the
//! dispatched bitonic sort against `sort_unstable` on KeyIdxLane (u64)
//! batches — sizing the candidate win from replacing the INSERT
//! staging sort with the vector kernel.

use primitives::simd::{self, KeyIdxLane};
use std::time::Instant;

#[test]
#[ignore]
fn lane_sort_timing() {
    for n in [256usize, 1024] {
        let mut s = 12345u32;
        let base: Vec<KeyIdxLane> = (0..n as u32)
            .map(|i| {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                KeyIdxLane::pack(s, i)
            })
            .collect();
        let mut buf = base.clone();
        for route in ["bitonic", "pdq"] {
            let reps = 40_000;
            let t0 = Instant::now();
            for _ in 0..reps {
                buf.copy_from_slice(&base);
                if route == "bitonic" {
                    simd::bitonic_sort(&mut buf);
                } else {
                    buf.sort_unstable();
                }
            }
            let ns = t0.elapsed().as_secs_f64() * 1e9 / (reps * n) as f64;
            println!("n={n:5} {route:8} {ns:.3} ns/elem (mode {:?})", simd::dispatch_mode());
        }
    }
}
