//! Property-based tests for the data-parallel primitives: the network
//! and merge-path schedules must agree with the standard library on every
//! input, and `SORT_SPLIT` must satisfy the paper's formal postconditions.

use primitives::simd::{self, KeyIdxLane};
use primitives::{
    bitonic_sort, bitonic_sort_padded, bitonic_sort_scalar, merge_into, merge_into_scalar,
    merge_into_vec, merge_path_search, parallel_merge, sort_split, sort_split_full,
};
use proptest::prelude::*;

fn sorted_vec(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(any::<u32>(), 0..max_len).prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

/// Sorted runs drawn from a tiny key domain (lots of duplicates) with an
/// optional tail of `u32::MAX` sentinels — the padding shape the heap's
/// partial buffer and staged insert batches produce.
fn sorted_with_sentinels(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    (proptest::collection::vec(0u32..64, 0..max_len), 0usize..8).prop_map(|(mut v, pad)| {
        v.extend(std::iter::repeat_n(u32::MAX, pad));
        v.sort_unstable();
        v
    })
}

/// Payload-carrying element whose ordering looks only at the key — lets
/// the differential tests observe tie-breaking (stability), which the
/// plain `u32` properties cannot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Keyed {
    key: u32,
    tag: u32,
}

impl PartialOrd for Keyed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Keyed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

fn sorted_keyed(max_len: usize, side: u32) -> impl Strategy<Value = Vec<Keyed>> {
    proptest::collection::vec(0u32..16, 0..max_len).prop_map(move |mut keys| {
        keys.sort_unstable();
        keys.iter()
            .enumerate()
            .map(|(i, &key)| Keyed { key, tag: side * 1_000_000 + i as u32 })
            .collect()
    })
}

proptest! {
    #[test]
    fn bitonic_equals_std_sort(mut v in proptest::collection::vec(any::<u32>(), 0..257)) {
        // Pad to a power of two inside bitonic_sort_padded.
        let mut expect = v.clone();
        expect.sort_unstable();
        bitonic_sort_padded(&mut v, u32::MAX);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn bitonic_pow2_is_permutation(v in (0u32..=8).prop_flat_map(|e| {
            proptest::collection::vec(any::<u32>(), 1usize << e)
        })) {
        let mut sorted = v.clone();
        bitonic_sort(&mut sorted);
        let mut expect = v;
        expect.sort_unstable();
        prop_assert_eq!(sorted, expect);
    }

    #[test]
    fn merge_path_search_is_a_valid_split(a in sorted_vec(64), b in sorted_vec(64), frac in 0.0f64..=1.0) {
        let diag = ((a.len() + b.len()) as f64 * frac) as usize;
        let (i, j) = merge_path_search(&a, &b, diag);
        prop_assert_eq!(i + j, diag);
        // Path validity: everything consumed is <= everything not yet consumed.
        if i > 0 && j < b.len() {
            prop_assert!(a[i - 1] <= b[j]);
        }
        if j > 0 && i < a.len() {
            prop_assert!(b[j - 1] <= a[i]);
        }
    }

    #[test]
    fn parallel_merge_equals_std(a in sorted_vec(128), b in sorted_vec(128), p in 1usize..64) {
        let mut out = vec![0u32; a.len() + b.len()];
        parallel_merge(&a, &b, &mut out, p);
        let mut expect: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn merge_into_equals_std(a in sorted_vec(128), b in sorted_vec(128)) {
        let mut out = vec![0u32; a.len() + b.len()];
        merge_into(&a, &b, &mut out);
        let mut expect: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn sort_split_postconditions(za in sorted_vec(64), wb in sorted_vec(64), frac in 0.0f64..=1.0) {
        let (na, nb) = (za.len(), wb.len());
        let total = na + nb;
        let ma = (total as f64 * frac) as usize;
        // Buffers sized to fit both outcomes.
        let mut z = za.clone();
        z.resize(na.max(ma), 0);
        let mut w = wb.clone();
        w.resize(nb.max(total - ma), 0);
        let mut scratch = Vec::new();
        let r = sort_split(&mut z, na, &mut w, nb, ma, &mut scratch);

        prop_assert_eq!(r.ma + r.mb, total);
        prop_assert_eq!(r.ma, ma);
        let x = &z[..r.ma];
        let y = &w[..r.mb];
        // Both sorted.
        prop_assert!(x.windows(2).all(|p| p[0] <= p[1]));
        prop_assert!(y.windows(2).all(|p| p[0] <= p[1]));
        // Split point: max X <= min Y.
        if !x.is_empty() && !y.is_empty() {
            prop_assert!(x[x.len() - 1] <= y[0]);
        }
        // Multiset preservation.
        let mut got: Vec<u32> = x.iter().chain(y.iter()).copied().collect();
        got.sort_unstable();
        let mut expect: Vec<u32> = za.iter().chain(wb.iter()).copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    // ---- Differential suite: fast kernels vs retained scalar oracles ----

    #[test]
    fn merge_into_matches_scalar_oracle(
        a in sorted_with_sentinels(96),
        b in sorted_with_sentinels(96),
    ) {
        let mut fast = vec![0u32; a.len() + b.len()];
        let mut slow = fast.clone();
        merge_into(&a, &b, &mut fast);
        merge_into_scalar(&a, &b, &mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn merge_into_preserves_tie_order_of_oracle(
        a in sorted_keyed(80, 1),
        b in sorted_keyed(80, 2),
    ) {
        // Payloads make tie resolution observable: with only 16 distinct
        // keys the merge is mostly ties, and the unrolled kernel must
        // break every one exactly like the oracle (a first, then input
        // order).
        let zero = Keyed { key: 0, tag: 0 };
        let mut fast = vec![zero; a.len() + b.len()];
        let mut slow = fast.clone();
        merge_into(&a, &b, &mut fast);
        merge_into_scalar(&a, &b, &mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn merge_into_vec_matches_scalar_oracle_and_stays_warm(
        a in sorted_with_sentinels(96),
        b in sorted_with_sentinels(96),
        c in sorted_with_sentinels(96),
    ) {
        let mut out = Vec::new();
        merge_into_vec(&a, &b, &mut out);
        let mut slow = vec![0u32; a.len() + b.len()];
        merge_into_scalar(&a, &b, &mut slow);
        prop_assert_eq!(&out, &slow);

        // Re-merging something no larger into the warm vector must not
        // reallocate (the zero-allocation hot path relies on this).
        let cap = out.capacity();
        merge_into_vec(&b, &c, &mut out);
        let mut slow2 = vec![0u32; b.len() + c.len()];
        merge_into_scalar(&b, &c, &mut slow2);
        prop_assert_eq!(&out, &slow2);
        if b.len() + c.len() <= cap {
            prop_assert_eq!(out.capacity(), cap);
        }
    }

    #[test]
    fn bitonic_matches_scalar_oracle(v in (0u32..=8).prop_flat_map(|e| {
            proptest::collection::vec(0u32..32, 1usize << e)
        })) {
        let mut fast = v.clone();
        let mut slow = v;
        bitonic_sort(&mut fast);
        bitonic_sort_scalar(&mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn sort_split_matches_oracle_merge(
        za in sorted_with_sentinels(64),
        wb in sorted_with_sentinels(64),
        frac in 0.0f64..=1.0,
    ) {
        let (na, nb) = (za.len(), wb.len());
        let total = na + nb;
        let ma = (total as f64 * frac) as usize;
        let mut z = za.clone();
        z.resize(na.max(ma), 0);
        let mut w = wb.clone();
        w.resize(nb.max(total - ma), 0);
        let mut scratch = Vec::new();
        sort_split(&mut z, na, &mut w, nb, ma, &mut scratch);

        // Oracle: scalar merge, then split at ma.
        let mut merged = vec![0u32; total];
        merge_into_scalar(&za, &wb, &mut merged);
        prop_assert_eq!(&z[..ma], &merged[..ma]);
        prop_assert_eq!(&w[..total - ma], &merged[ma..]);
    }

    #[test]
    fn sort_split_full_postconditions(a in sorted_vec(64), b in sorted_vec(64)) {
        let mut x = a.clone();
        let mut y = b.clone();
        let mut scratch = Vec::new();
        sort_split_full(&mut x, &mut y, &mut scratch);
        prop_assert!(x.windows(2).all(|p| p[0] <= p[1]));
        prop_assert!(y.windows(2).all(|p| p[0] <= p[1]));
        if !x.is_empty() && !y.is_empty() {
            prop_assert!(x[x.len() - 1] <= y[0]);
        }
        let mut got: Vec<u32> = x.iter().chain(y.iter()).copied().collect();
        got.sort_unstable();
        let mut expect: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    // ---- Differential suite: dispatched SIMD kernels vs scalar oracles ----
    //
    // These run against whatever `simd::dispatch_mode()` resolves to in
    // this process (AVX2 on capable hosts, scalar otherwise) and compare
    // output element-for-element with the retained scalar oracles. The
    // CI leg that sets `BGPQ_FORCE_SCALAR=1` re-runs the same properties
    // with the dispatcher pinned to scalar, so both kernel families get
    // the full suite. The mode is deliberately NOT toggled inside test
    // bodies — the dispatch cache is process-global and the test harness
    // is multi-threaded.

    #[test]
    fn simd_merge_u32_matches_scalar_oracle(
        a in sorted_with_sentinels(200),
        b in sorted_with_sentinels(200),
    ) {
        // Lengths are arbitrary, so tails shorter than a vector width
        // (16 u32 lanes) and fully unaligned splits are routine here.
        let mut fast = vec![0u32; a.len() + b.len()];
        let mut slow = fast.clone();
        simd::merge_into(&a, &b, &mut fast);
        merge_into_scalar(&a, &b, &mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn simd_merge_u64_matches_scalar_oracle(
        a in sorted_with_sentinels(160),
        b in sorted_with_sentinels(160),
    ) {
        let a: Vec<u64> = a.iter().map(|&k| k as u64).collect();
        let b: Vec<u64> = b.iter().map(|&k| k as u64).collect();
        let mut fast = vec![0u64; a.len() + b.len()];
        let mut slow = fast.clone();
        simd::merge_into(&a, &b, &mut fast);
        merge_into_scalar(&a, &b, &mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn simd_bitonic_u32_matches_scalar_oracle(v in (0u32..=10).prop_flat_map(|e| {
            proptest::collection::vec(0u32..32, 1usize << e)
        })) {
        // Tiny key domain: the network's compare-exchange wiring is
        // exercised almost entirely on duplicate keys.
        let mut fast = v.clone();
        let mut slow = v;
        simd::bitonic_sort(&mut fast);
        bitonic_sort_scalar(&mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn simd_bitonic_u64_matches_std_sort(v in (0u32..=9).prop_flat_map(|e| {
            proptest::collection::vec(any::<u64>(), 1usize << e)
        })) {
        let mut fast = v.clone();
        let mut expect = v;
        simd::bitonic_sort(&mut fast);
        expect.sort_unstable();
        prop_assert_eq!(fast, expect);
    }

    #[test]
    fn simd_sort_split_matches_oracle_merge(
        za in sorted_with_sentinels(96),
        wb in sorted_with_sentinels(96),
        frac in 0.0f64..=1.0,
    ) {
        let (na, nb) = (za.len(), wb.len());
        let total = na + nb;
        let ma = (total as f64 * frac) as usize;
        let mut z = za.clone();
        z.resize(na.max(ma), 0);
        let mut w = wb.clone();
        w.resize(nb.max(total - ma), 0);
        let mut scratch = Vec::new();
        let r = simd::sort_split(&mut z, na, &mut w, nb, ma, &mut scratch);

        prop_assert_eq!(r.ma, ma);
        prop_assert_eq!(r.mb, total - ma);
        let mut merged = vec![0u32; total];
        merge_into_scalar(&za, &wb, &mut merged);
        prop_assert_eq!(&z[..ma], &merged[..ma]);
        prop_assert_eq!(&w[..total - ma], &merged[ma..]);
    }

    #[test]
    fn simd_sort_split_full_matches_scalar_primitive(
        a in sorted_with_sentinels(128),
        b in sorted_with_sentinels(128),
    ) {
        let mut fx = a.clone();
        let mut fy = b.clone();
        let mut scratch = Vec::new();
        simd::sort_split_full(&mut fx, &mut fy, &mut scratch);

        let mut sx = a;
        let mut sy = b;
        let mut sscratch = Vec::new();
        sort_split_full(&mut sx, &mut sy, &mut sscratch);
        prop_assert_eq!(fx, sx);
        prop_assert_eq!(fy, sy);
    }

    #[test]
    fn simd_lane_merge_is_stable_by_construction(
        a in sorted_keyed(120, 1),
        b in sorted_keyed(120, 2),
    ) {
        // The SoA gather order rests on this property: packing keys in
        // the high 32 bits and source positions in the low 32 makes the
        // plain u64 lane merge reproduce a *stable* keyed merge (a-side
        // before b-side on ties, input order within a side), because
        // a-side lanes carry strictly smaller indices than b-side lanes.
        let la: Vec<KeyIdxLane> =
            a.iter().enumerate().map(|(i, e)| KeyIdxLane::pack(e.key, i as u32)).collect();
        let lb: Vec<KeyIdxLane> = b
            .iter()
            .enumerate()
            .map(|(i, e)| KeyIdxLane::pack(e.key, (a.len() + i) as u32))
            .collect();
        let mut lanes = vec![KeyIdxLane::default(); la.len() + lb.len()];
        simd::merge_into(&la, &lb, &mut lanes);

        // Oracle: the stable scalar merge of the payload-carrying
        // elements. Tags encode side and input order, so equality here
        // pins every tie-break, not just the key sequence.
        let zero = Keyed { key: 0, tag: 0 };
        let mut oracle = vec![zero; a.len() + b.len()];
        merge_into_scalar(&a, &b, &mut oracle);
        for (lane, expect) in lanes.iter().zip(&oracle) {
            prop_assert_eq!(lane.key_lane(), expect.key);
            let idx = lane.idx() as usize;
            let from_a = idx < a.len();
            prop_assert_eq!(from_a, expect.tag < 2_000_000);
            let src = if from_a { a[idx] } else { b[idx - a.len()] };
            prop_assert_eq!(src.tag, expect.tag);
        }
    }

    #[test]
    fn simd_lane_sort_orders_ties_by_index(v in (0u32..=8).prop_flat_map(|e| {
            proptest::collection::vec(0u32..8, 1usize << e)
        })) {
        let lanes: Vec<KeyIdxLane> =
            v.iter().enumerate().map(|(i, &k)| KeyIdxLane::pack(k, i as u32)).collect();
        let mut fast = lanes.clone();
        simd::bitonic_sort(&mut fast);
        // Packed comparison == (key, original position): the network
        // output must equal a *stable* sort of the keys.
        let mut expect = lanes;
        expect.sort(); // stdlib sort is stable; full-u64 Ord makes it total anyway
        prop_assert_eq!(&fast, &expect);
        for w in fast.windows(2) {
            if w[0].key_lane() == w[1].key_lane() {
                prop_assert!(w[0].idx() < w[1].idx());
            }
        }
    }
}
