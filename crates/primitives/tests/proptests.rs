//! Property-based tests for the data-parallel primitives: the network
//! and merge-path schedules must agree with the standard library on every
//! input, and `SORT_SPLIT` must satisfy the paper's formal postconditions.

use primitives::{
    bitonic_sort, bitonic_sort_padded, merge_into, merge_path_search, parallel_merge, sort_split,
    sort_split_full,
};
use proptest::prelude::*;

fn sorted_vec(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(any::<u32>(), 0..max_len).prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

proptest! {
    #[test]
    fn bitonic_equals_std_sort(mut v in proptest::collection::vec(any::<u32>(), 0..257)) {
        // Pad to a power of two inside bitonic_sort_padded.
        let mut expect = v.clone();
        expect.sort_unstable();
        bitonic_sort_padded(&mut v, u32::MAX);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn bitonic_pow2_is_permutation(v in (0u32..=8).prop_flat_map(|e| {
            proptest::collection::vec(any::<u32>(), 1usize << e)
        })) {
        let mut sorted = v.clone();
        bitonic_sort(&mut sorted);
        let mut expect = v;
        expect.sort_unstable();
        prop_assert_eq!(sorted, expect);
    }

    #[test]
    fn merge_path_search_is_a_valid_split(a in sorted_vec(64), b in sorted_vec(64), frac in 0.0f64..=1.0) {
        let diag = ((a.len() + b.len()) as f64 * frac) as usize;
        let (i, j) = merge_path_search(&a, &b, diag);
        prop_assert_eq!(i + j, diag);
        // Path validity: everything consumed is <= everything not yet consumed.
        if i > 0 && j < b.len() {
            prop_assert!(a[i - 1] <= b[j]);
        }
        if j > 0 && i < a.len() {
            prop_assert!(b[j - 1] <= a[i]);
        }
    }

    #[test]
    fn parallel_merge_equals_std(a in sorted_vec(128), b in sorted_vec(128), p in 1usize..64) {
        let mut out = vec![0u32; a.len() + b.len()];
        parallel_merge(&a, &b, &mut out, p);
        let mut expect: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn merge_into_equals_std(a in sorted_vec(128), b in sorted_vec(128)) {
        let mut out = vec![0u32; a.len() + b.len()];
        merge_into(&a, &b, &mut out);
        let mut expect: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn sort_split_postconditions(za in sorted_vec(64), wb in sorted_vec(64), frac in 0.0f64..=1.0) {
        let (na, nb) = (za.len(), wb.len());
        let total = na + nb;
        let ma = (total as f64 * frac) as usize;
        // Buffers sized to fit both outcomes.
        let mut z = za.clone();
        z.resize(na.max(ma), 0);
        let mut w = wb.clone();
        w.resize(nb.max(total - ma), 0);
        let mut scratch = Vec::new();
        let r = sort_split(&mut z, na, &mut w, nb, ma, &mut scratch);

        prop_assert_eq!(r.ma + r.mb, total);
        prop_assert_eq!(r.ma, ma);
        let x = &z[..r.ma];
        let y = &w[..r.mb];
        // Both sorted.
        prop_assert!(x.windows(2).all(|p| p[0] <= p[1]));
        prop_assert!(y.windows(2).all(|p| p[0] <= p[1]));
        // Split point: max X <= min Y.
        if !x.is_empty() && !y.is_empty() {
            prop_assert!(x[x.len() - 1] <= y[0]);
        }
        // Multiset preservation.
        let mut got: Vec<u32> = x.iter().chain(y.iter()).copied().collect();
        got.sort_unstable();
        let mut expect: Vec<u32> = za.iter().chain(wb.iter()).copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn sort_split_full_postconditions(a in sorted_vec(64), b in sorted_vec(64)) {
        let mut x = a.clone();
        let mut y = b.clone();
        let mut scratch = Vec::new();
        sort_split_full(&mut x, &mut y, &mut scratch);
        prop_assert!(x.windows(2).all(|p| p[0] <= p[1]));
        prop_assert!(y.windows(2).all(|p| p[0] <= p[1]));
        if !x.is_empty() && !y.is_empty() {
            prop_assert!(x[x.len() - 1] <= y[0]);
        }
        let mut got: Vec<u32> = x.iter().chain(y.iter()).copied().collect();
        got.sort_unstable();
        let mut expect: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}
