//! Relaxation observability: how far from the true minimum do relaxed
//! deletes land, and how evenly does sticky insert affinity spread load?
//!
//! MultiQueue-style sampling trades strict ordering for scalability; the
//! literature quantifies the trade with *rank error* — how many smaller
//! keys were skipped by a delete-min. We measure the shard-level
//! analogue: at the moment a delete commits to a shard, how many *other*
//! shards advertised (via their root-min hints) a smaller minimum than
//! the key actually returned. With `c`-of-`S` sampling and exact hints
//! this is at most `S - c` at quiescence: the best sampled shard is
//! taken, so only unsampled shards can hide a smaller key.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters recorded by the router on every delete. All
/// increments are `Relaxed`: statistics, not synchronization.
#[derive(Debug, Default)]
pub struct QualityStats {
    /// Deletes that returned at least one entry.
    deletes: AtomicU64,
    /// Sum over deletes of the per-delete rank error (see module docs).
    rank_error_sum: AtomicU64,
    /// Largest single-delete rank error observed.
    rank_error_max: AtomicU64,
    /// Deletes served by a shard other than the best-hinted sampled one
    /// (the first choice raced empty and work was stolen).
    steals: AtomicU64,
    /// Exact fallback sweeps over every shard (all sampled shards were
    /// empty at the attempt).
    full_sweeps: AtomicU64,
    /// Shards taken out of rotation after a failure (poisoned heap or
    /// lock timeout). Without recovery configured this is monotone —
    /// quarantine is permanent for the life of the router; with
    /// recovery enabled a quarantined shard can be salvaged and
    /// re-admitted (each re-quarantine counts again).
    quarantines: AtomicU64,
    /// Salvage probes attempted on quarantined shards (each probe
    /// either salvages or reschedules itself).
    probes: AtomicU64,
    /// Completed salvage passes: a quarantined shard's node storage was
    /// walked, its settled keys rebuilt, and the shard moved to
    /// half-open trial service.
    salvages: AtomicU64,
    /// Shards fully re-admitted (half-open trial traffic succeeded and
    /// the breaker closed).
    readmissions: AtomicU64,
    /// Keys walked out of crashed shards by salvage passes.
    keys_recovered: AtomicU64,
    /// Keys confirmed (or conservatively presumed) lost: in-flight
    /// batches at crash time plus any rebuild residue that no live
    /// shard would accept. Every key counted here appeared in a
    /// `SalvageReport` — loss is never silent.
    keys_lost: AtomicU64,
    /// Keys a buffered front staged toward a home shard that was
    /// quarantined by flush time; the flush re-routed them through the
    /// router's redistribution path instead of dropping them.
    buffer_reroutes: AtomicU64,
}

impl QualityStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a successful delete: `hints` is the per-shard root-min
    /// snapshot captured before routing, `taken` the shard that served
    /// the delete, `first_bits` the ordered-bits encoding of the first
    /// (smallest) key returned, `stolen` whether `taken` was not the
    /// first choice.
    pub fn record_delete(&self, hints: &[u64], taken: usize, first_bits: u64, stolen: bool) {
        let err =
            hints.iter().enumerate().filter(|&(i, &h)| i != taken && h < first_bits).count() as u64;
        self.record_delete_with_error(err, stolen);
    }

    /// [`QualityStats::record_delete`] with a pre-computed rank error —
    /// for callers (the buffered front's sticky refills) that count the
    /// smaller-hinted shards inline instead of materializing a hint
    /// slice.
    pub fn record_delete_with_error(&self, err: u64, stolen: bool) {
        self.deletes.fetch_add(1, Ordering::Relaxed);
        self.rank_error_sum.fetch_add(err, Ordering::Relaxed);
        self.rank_error_max.fetch_max(err, Ordering::Relaxed);
        if stolen {
            self.steals.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one exact full-sweep fallback.
    pub fn record_full_sweep(&self) {
        self.full_sweeps.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one shard entering quarantine.
    pub fn record_quarantine(&self) {
        self.quarantines.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one salvage probe attempt on a quarantined shard.
    pub fn record_probe(&self) {
        self.probes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one completed salvage pass and its key accounting.
    pub fn record_salvage(&self, recovered: u64, lost: u64) {
        self.salvages.fetch_add(1, Ordering::Relaxed);
        self.keys_recovered.fetch_add(recovered, Ordering::Relaxed);
        self.keys_lost.fetch_add(lost, Ordering::Relaxed);
    }

    /// Record rebuild residue: recovered keys no live shard accepted.
    pub fn record_lost(&self, keys: u64) {
        self.keys_lost.fetch_add(keys, Ordering::Relaxed);
    }

    /// Record one shard closing its breaker after trial traffic.
    pub fn record_readmission(&self) {
        self.readmissions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record staged keys whose home shard was quarantined at flush
    /// time and which re-routed to live shards instead.
    pub fn record_buffer_reroute(&self, keys: u64) {
        self.buffer_reroutes.fetch_add(keys, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> QualitySnapshot {
        QualitySnapshot {
            deletes: self.deletes.load(Ordering::Relaxed),
            rank_error_sum: self.rank_error_sum.load(Ordering::Relaxed),
            rank_error_max: self.rank_error_max.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            full_sweeps: self.full_sweeps.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            salvages: self.salvages.load(Ordering::Relaxed),
            readmissions: self.readmissions.load(Ordering::Relaxed),
            keys_recovered: self.keys_recovered.load(Ordering::Relaxed),
            keys_lost: self.keys_lost.load(Ordering::Relaxed),
            buffer_reroutes: self.buffer_reroutes.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters (between bench trials).
    pub fn reset(&self) {
        self.deletes.store(0, Ordering::Relaxed);
        self.rank_error_sum.store(0, Ordering::Relaxed);
        self.rank_error_max.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
        self.full_sweeps.store(0, Ordering::Relaxed);
        self.quarantines.store(0, Ordering::Relaxed);
        self.probes.store(0, Ordering::Relaxed);
        self.salvages.store(0, Ordering::Relaxed);
        self.readmissions.store(0, Ordering::Relaxed);
        self.keys_recovered.store(0, Ordering::Relaxed);
        self.keys_lost.store(0, Ordering::Relaxed);
        self.buffer_reroutes.store(0, Ordering::Relaxed);
    }
}

/// Plain-data snapshot of [`QualityStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QualitySnapshot {
    pub deletes: u64,
    pub rank_error_sum: u64,
    pub rank_error_max: u64,
    pub steals: u64,
    pub full_sweeps: u64,
    pub quarantines: u64,
    pub probes: u64,
    pub salvages: u64,
    pub readmissions: u64,
    pub keys_recovered: u64,
    pub keys_lost: u64,
    pub buffer_reroutes: u64,
}

impl QualitySnapshot {
    /// Average rank error per successful delete.
    pub fn mean_rank_error(&self) -> f64 {
        if self.deletes == 0 {
            return 0.0;
        }
        self.rank_error_sum as f64 / self.deletes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_error_counts_strictly_smaller_other_shards() {
        let q = QualityStats::new();
        // Shard 2 returned key-bits 10; shards 0 (5) and 3 (9) were
        // smaller, shard 1 (10) ties and does not count, shard 2 is
        // excluded even though its (stale) hint is below.
        q.record_delete(&[5, 10, 7, 9], 2, 10, false);
        let s = q.snapshot();
        assert_eq!(s.deletes, 1);
        assert_eq!(s.rank_error_sum, 2);
        assert_eq!(s.rank_error_max, 2);
        assert_eq!(s.steals, 0);
    }

    #[test]
    fn steals_and_sweeps_accumulate_and_reset() {
        let q = QualityStats::new();
        q.record_delete(&[1, 2], 1, 2, true);
        q.record_delete(&[u64::MAX, 2], 1, 2, false);
        q.record_full_sweep();
        let s = q.snapshot();
        assert_eq!(s.deletes, 2);
        assert_eq!(s.steals, 1);
        assert_eq!(s.full_sweeps, 1);
        assert_eq!(s.rank_error_sum, 1, "only shard 0's hint 1 < 2 in the first delete");
        assert!((s.mean_rank_error() - 0.5).abs() < 1e-12);
        q.reset();
        assert_eq!(q.snapshot(), QualitySnapshot::default());
        assert_eq!(QualitySnapshot::default().mean_rank_error(), 0.0);
    }

    #[test]
    fn recovery_counters_accumulate_and_reset() {
        let q = QualityStats::new();
        q.record_quarantine();
        q.record_probe();
        q.record_probe();
        q.record_salvage(120, 4);
        q.record_lost(2);
        q.record_readmission();
        q.record_buffer_reroute(16);
        let s = q.snapshot();
        assert_eq!(s.quarantines, 1);
        assert_eq!(s.probes, 2);
        assert_eq!(s.salvages, 1);
        assert_eq!(s.readmissions, 1);
        assert_eq!(s.keys_recovered, 120);
        assert_eq!(s.keys_lost, 6, "salvage loss and rebuild residue fold together");
        assert_eq!(s.buffer_reroutes, 16);
        q.reset();
        assert_eq!(q.snapshot(), QualitySnapshot::default());
    }
}
