//! Host-side front: the sharded router on real threads.
//!
//! Sticky affinity comes from a process-wide ticket: the first sharded
//! operation a thread performs assigns it a small stable worker id, and
//! inserts from that thread always route to shard `id % S`. Consecutive
//! batches from one producer therefore land in the same shard, keeping
//! its partial buffer and root cache hot. Delete-side sampling uses a
//! per-thread xorshift state seeded from the same id, so runs with a
//! fixed thread↔work assignment are reproducible.

use crate::router::{ShardedBgpq, ShardedOptions};
use bgpq_runtime::{with_thread_worker, CpuPlatform};
use pq_api::{
    BatchPriorityQueue, Entry, KeyType, PriorityQueue, QueueFactory, TryBatchPriorityQueue,
    ValueType,
};
use std::cell::Cell;

thread_local! {
    static RNG_STATE: Cell<u64> = const { Cell::new(0) };
}

/// Stable, dense id of the calling thread (0, 1, 2, … in first-use
/// order, shared by every sharded queue in the process). Re-exported
/// from the runtime's process-wide ticket so the shard router and the
/// combiner front agree on thread identity.
pub use bgpq_runtime::worker_id;

/// Run `f` with this thread's sampling-RNG state (lazily seeded from
/// the worker id via splitmix64).
fn with_thread_rng<R>(f: impl FnOnce(&mut u64) -> R) -> R {
    RNG_STATE.with(|c| {
        let mut s = c.get();
        if s == 0 {
            let mut z = (worker_id() as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            s = (z ^ (z >> 31)) | 1;
        }
        let r = f(&mut s);
        c.set(s);
        r
    })
}

/// [`ShardedBgpq`] on [`CpuPlatform`], with per-thread sticky affinity.
/// Implements both [`BatchPriorityQueue`] (native shape) and
/// [`PriorityQueue`] (item-at-a-time convenience).
///
/// With [`ShardedOptions::buffer`] set the front runs in buffered mode:
/// every insert stages into (and every delete serves from) the calling
/// thread's buffer slot, flushed/refilled in wide batches — see the
/// router's module docs. Threads that stop producing should call
/// [`CpuShardedBgpq::flush`] (or the queue's owner
/// [`CpuShardedBgpq::quiesce_all`]) to push their staged keys down;
/// until then the keys stay *visible* ([`CpuShardedBgpq::len`], drains
/// and exact-emptiness sweeps all observe them) but not yet in a shard.
pub struct CpuShardedBgpq<K: KeyType, V: ValueType> {
    inner: ShardedBgpq<K, V, CpuPlatform>,
    buffered: bool,
}

impl<K: KeyType, V: ValueType> CpuShardedBgpq<K, V> {
    pub fn new(opts: ShardedOptions) -> Self {
        opts.validate();
        let platforms: Vec<CpuPlatform> =
            (0..opts.shards).map(|_| CpuPlatform::new(opts.queue.max_nodes + 1)).collect();
        // The CPU platform can safely force-reset abandoned lock words,
        // so when recovery is requested the breaker gets the real
        // salvager; without it `recovery` would silently mean
        // "permanent quarantine after all".
        let buffered = opts.buffer.is_some();
        let inner = if opts.recovery.is_some() {
            ShardedBgpq::with_platforms_recovering(platforms, opts, bgpq_recover::salvage_heap)
        } else {
            ShardedBgpq::with_platforms(platforms, opts)
        };
        Self { inner, buffered }
    }

    /// The underlying generic router (quality stats, per-shard access).
    pub fn inner(&self) -> &ShardedBgpq<K, V, CpuPlatform> {
        &self.inner
    }

    /// Whether the buffered operating mode is on.
    pub fn buffered(&self) -> bool {
        self.buffered
    }

    /// Non-panicking insert with sticky affinity: backpressure and
    /// shard fail-over surface as [`pq_api::QueueError`] values. In
    /// buffered mode the batch stages in this thread's slot.
    pub fn try_insert_batch(&self, items: &[Entry<K, V>]) -> Result<(), pq_api::QueueError> {
        with_thread_worker(|w| {
            if self.buffered {
                self.inner.buffered_try_insert(w, worker_id(), items)
            } else {
                self.inner.try_insert(w, worker_id(), items)
            }
        })
    }

    /// Non-panicking relaxed delete: `Ok(0)` means every live shard was
    /// observed empty; `Err(Poisoned)` means no live shard remains. In
    /// buffered mode entries serve from this thread's deletion buffer
    /// and `Ok(0)` additionally means no reachable buffered keys
    /// remain.
    pub fn try_delete_min_batch(
        &self,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
    ) -> Result<usize, pq_api::QueueError> {
        with_thread_worker(|w| {
            with_thread_rng(|rng| {
                if self.buffered {
                    self.inner.buffered_try_delete_min(w, worker_id(), rng, out, count)
                } else {
                    self.inner.try_delete_min(w, rng, out, count)
                }
            })
        })
    }

    /// Flush this thread's staged inserts to the shards (no-op when
    /// unbuffered). Call when a producer goes idle.
    pub fn flush(&self) -> Result<usize, pq_api::QueueError> {
        with_thread_worker(|w| self.inner.flush_slot(w, worker_id()))
    }

    /// Quiesce every buffer slot: staged inserts flush and deletion
    /// buffers return to the shards (no-op when unbuffered). Quiescent
    /// callers only — run this after worker threads joined.
    pub fn quiesce_all(&self) -> Result<usize, pq_api::QueueError> {
        with_thread_worker(|w| self.inner.quiesce_all(w))
    }

    /// Total items across shards (inherent, so `q.len()` stays
    /// unambiguous even though both queue traits also define `len`).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<K: KeyType, V: ValueType> BatchPriorityQueue<K, V> for CpuShardedBgpq<K, V> {
    fn batch_capacity(&self) -> usize {
        self.inner.node_capacity()
    }

    fn insert_batch(&self, items: &[Entry<K, V>]) {
        if self.buffered {
            self.try_insert_batch(items)
                .unwrap_or_else(|e| panic!("sharded BGPQ insert failed: {e}"));
        } else {
            with_thread_worker(|w| self.inner.insert(w, worker_id(), items));
        }
    }

    fn delete_min_batch(&self, out: &mut Vec<Entry<K, V>>, count: usize) -> usize {
        if self.buffered {
            self.try_delete_min_batch(out, count)
                .unwrap_or_else(|e| panic!("sharded BGPQ delete_min failed: {e}"))
        } else {
            with_thread_worker(|w| with_thread_rng(|rng| self.inner.delete_min(w, rng, out, count)))
        }
    }

    fn len(&self) -> usize {
        self.inner.len()
    }
}

/// Route the trait's fallible entry points to the sticky-affinity
/// hardened paths so generic fronts (the coalescing combiner) observe
/// backpressure and shard fail-over as typed errors.
impl<K: KeyType, V: ValueType> TryBatchPriorityQueue<K, V> for CpuShardedBgpq<K, V> {
    fn try_insert_batch(&self, items: &[Entry<K, V>]) -> Result<(), pq_api::QueueError> {
        CpuShardedBgpq::try_insert_batch(self, items)
    }

    fn try_delete_min_batch(
        &self,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
    ) -> Result<usize, pq_api::QueueError> {
        CpuShardedBgpq::try_delete_min_batch(self, out, count)
    }
}

impl<K: KeyType, V: ValueType> PriorityQueue<K, V> for CpuShardedBgpq<K, V> {
    fn insert(&self, key: K, value: V) {
        BatchPriorityQueue::insert_batch(self, &[Entry::new(key, value)]);
    }

    fn delete_min(&self) -> Option<Entry<K, V>> {
        let mut out = Vec::with_capacity(1);
        if BatchPriorityQueue::delete_min_batch(self, &mut out, 1) == 1 {
            out.pop()
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.inner.len()
    }
}

/// Factory for the bench harness and the application drivers.
pub struct ShardedBgpqFactory {
    /// Number of shards `S`.
    pub shards: usize,
    /// Shards sampled per delete `c`.
    pub sample: usize,
    /// Per-shard node capacity `k`.
    pub node_capacity: usize,
    /// Per-worker buffering (`None` = classic unbuffered front).
    pub buffer: Option<pq_api::BufferPolicy>,
    name: String,
}

impl ShardedBgpqFactory {
    pub fn new(shards: usize, sample: usize, node_capacity: usize) -> Self {
        Self {
            shards,
            sample,
            node_capacity,
            buffer: None,
            name: format!("BGPQ-shard/S{shards}c{sample}"),
        }
    }

    /// Build queues with the buffered sticky front enabled.
    pub fn with_buffering(mut self, policy: pq_api::BufferPolicy) -> Self {
        self.name = format!(
            "BGPQ-shard/S{}c{}+buf{}s{}",
            self.shards, self.sample, policy.insert_capacity, policy.stickiness
        );
        self.buffer = Some(policy);
        self
    }
}

impl Default for ShardedBgpqFactory {
    fn default() -> Self {
        Self::new(4, 2, 1024)
    }
}

impl<K: KeyType, V: ValueType> QueueFactory<K, V> for ShardedBgpqFactory {
    type Queue = CpuShardedBgpq<K, V>;

    fn name(&self) -> &str {
        &self.name
    }

    fn build(&self, capacity_hint: usize) -> CpuShardedBgpq<K, V> {
        let mut opts = ShardedOptions::with_capacity_for(
            self.shards,
            self.sample,
            self.node_capacity,
            capacity_hint.max(1),
        );
        if let Some(policy) = self.buffer {
            opts = opts.with_buffering(policy);
        }
        CpuShardedBgpq::new(opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq::BgpqOptions;

    fn small(shards: usize, sample: usize) -> CpuShardedBgpq<u32, u32> {
        CpuShardedBgpq::new(ShardedOptions::new(
            shards,
            sample,
            BgpqOptions { node_capacity: 8, max_nodes: 512, ..Default::default() },
        ))
    }

    #[test]
    fn batch_roundtrip_conserves_multiset() {
        let q = small(4, 2);
        let keys: Vec<u32> = (0..200).map(|i| (i * 37) % 1000).collect();
        for chunk in keys.chunks(8) {
            let items: Vec<Entry<u32, u32>> = chunk.iter().map(|&k| Entry::new(k, k)).collect();
            q.insert_batch(&items);
        }
        assert_eq!(q.len(), keys.len());
        let mut out = Vec::new();
        while q.delete_min_batch(&mut out, 8) > 0 {}
        assert!(q.is_empty());
        let mut got: Vec<u32> = out.iter().map(|e| e.key).collect();
        got.sort_unstable();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn itemwise_trait_works() {
        let q = small(2, 1);
        PriorityQueue::insert(&q, 30u32, 3u32);
        PriorityQueue::insert(&q, 10, 1);
        PriorityQueue::insert(&q, 20, 2);
        // Single-threaded sticky affinity: everything sits in one
        // shard, so even sampled deletes are strict here.
        let e = PriorityQueue::delete_min(&q).expect("non-empty");
        assert_eq!((e.key, e.value), (10, 1));
        assert_eq!(PriorityQueue::len(&q), 2);
        while PriorityQueue::delete_min(&q).is_some() {}
        assert!(PriorityQueue::is_empty(&q));
    }

    #[test]
    fn concurrent_producers_spread_load() {
        let q = std::sync::Arc::new(small(4, 2));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let q = q.clone();
                s.spawn(move || {
                    let items: Vec<Entry<u32, u32>> =
                        (0..64u32).map(|k| Entry::new(k, 0)).collect();
                    for chunk in items.chunks(8) {
                        q.insert_batch(chunk);
                    }
                });
            }
        });
        assert_eq!(q.len(), 4 * 64);
        // Each thread has its own sticky shard; with 4 threads at most
        // 4 shards are touched and every item is somewhere.
        let touched = (0..4).filter(|&i| !q.inner().shard(i).is_empty()).count();
        assert!(touched >= 1);
        assert_eq!(q.inner().check_invariants(), 4 * 64);
    }

    #[test]
    fn buffered_concurrent_roundtrip_conserves_multiset() {
        let policy = pq_api::BufferPolicy::new()
            .with_insert_capacity(16)
            .with_refill_width(16)
            .with_stickiness(4);
        let q = std::sync::Arc::new(CpuShardedBgpq::<u32, u32>::new(
            ShardedOptions::new(
                4,
                2,
                BgpqOptions { node_capacity: 8, max_nodes: 512, ..Default::default() },
            )
            .with_buffering(policy),
        ));
        assert!(q.buffered());
        let popped: Vec<Vec<u32>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let q = q.clone();
                    s.spawn(move || {
                        let base = (t as u32) * 1000;
                        let mut mine = Vec::new();
                        let mut out = Vec::new();
                        for i in 0..64u32 {
                            q.try_insert_batch(&[Entry::new(base + i, 0)]).unwrap();
                            if i % 4 == 3 {
                                out.clear();
                                let n = q.try_delete_min_batch(&mut out, 2).unwrap();
                                mine.extend(out[..n].iter().map(|e| e.key));
                            }
                        }
                        q.flush().unwrap();
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let taken: usize = popped.iter().map(|v| v.len()).sum();
        assert_eq!(q.len(), 4 * 64 - taken, "parked keys count toward len");
        q.quiesce_all().unwrap();
        assert_eq!(q.inner().buffered_len(), 0);
        // Drain the remainder and check the multiset survived intact.
        let mut rest = Vec::new();
        let mut out = Vec::new();
        while q.try_delete_min_batch(&mut out, 8).unwrap() > 0 {
            rest.append(&mut out);
        }
        let mut all: Vec<u32> = popped.into_iter().flatten().collect();
        all.extend(rest.iter().map(|e| e.key));
        all.sort_unstable();
        let mut expect: Vec<u32> =
            (0..4u32).flat_map(|t| (0..64u32).map(move |i| t * 1000 + i)).collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
        assert!(q.is_empty());
        let fs = q.inner().front_stats().snapshot();
        assert!(fs.buffer_refills > 0, "deletes must have gone through the buffer");
        assert!(fs.buffer_flushes > 0, "flush() and capacity flushes must have fired");
    }

    #[test]
    fn factory_builds_working_queue() {
        let f = ShardedBgpqFactory::new(3, 2, 16);
        assert_eq!(<ShardedBgpqFactory as QueueFactory<u32, ()>>::name(&f), "BGPQ-shard/S3c2");
        let q: CpuShardedBgpq<u32, ()> = f.build(10_000);
        assert_eq!(q.inner().num_shards(), 3);
        q.insert_batch(&[Entry::new(42u32, ())]);
        let mut out = Vec::new();
        assert_eq!(q.delete_min_batch(&mut out, 1), 1);
        assert_eq!(out[0].key, 42);

        let fb = ShardedBgpqFactory::new(3, 2, 16)
            .with_buffering(pq_api::BufferPolicy::new().with_insert_capacity(8).with_stickiness(2));
        assert_eq!(
            <ShardedBgpqFactory as QueueFactory<u32, ()>>::name(&fb),
            "BGPQ-shard/S3c2+buf8s2"
        );
        let q: CpuShardedBgpq<u32, ()> = fb.build(10_000);
        assert!(q.buffered());
        q.insert_batch(&[Entry::new(7u32, ())]);
        assert_eq!(q.len(), 1, "staged key is visible");
        out.clear();
        assert_eq!(q.delete_min_batch(&mut out, 1), 1);
        assert_eq!(out[0].key, 7);
        assert!(q.is_empty());
    }

    #[test]
    fn worker_ids_are_stable_and_distinct() {
        let a = worker_id();
        assert_eq!(a, worker_id());
        let b = std::thread::spawn(worker_id).join().unwrap();
        assert_ne!(a, b);
    }
}
