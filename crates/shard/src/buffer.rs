//! Per-worker buffer state for the router's buffered operating mode.
//!
//! One [`WorkerBuffers`] lives behind each of the router's buffer-slot
//! mutexes. The slot's owner (the worker hashing to it) takes the lock
//! blocking — the only contenders are harvesters and drains, whose
//! critical sections are pure memory moves — while *foreign* access
//! (emptiness harvests, full drains) uses `try_lock` and never performs
//! a platform or shard call while holding someone else's slot. That
//! discipline is what makes the blocking lock safe under the gpu-sim
//! virtual-time scheduler: an owner never waits on a holder that is
//! itself waiting on virtual time.

use pq_api::{Entry, KeyType, ValueType};

/// One worker's staged inserts and deletion buffer.
///
/// `ready` is kept **descending** by key so `pop()` serves the current
/// minimum in O(1); `stage` is arrival-ordered (the flush re-batches it
/// through the router, which sorts per node batch anyway). `tmp` is the
/// long-lived refill/flush scratch — reused so steady-state refills
/// allocate nothing once the vectors reach their working capacity.
#[derive(Debug)]
pub(crate) struct WorkerBuffers<K: KeyType, V: ValueType> {
    /// Staged inserts, arrival order, never more than the policy's
    /// `insert_capacity`.
    pub(crate) stage: Vec<Entry<K, V>>,
    /// Deletion buffer, descending by key (serve by popping the tail).
    pub(crate) ready: Vec<Entry<K, V>>,
    /// Refill / quiesce scratch.
    pub(crate) tmp: Vec<Entry<K, V>>,
    /// Sticky shard latched by the last fresh sample.
    pub(crate) sticky: usize,
    /// Shard-sourced refills left before the next fresh sample.
    pub(crate) sticky_left: u32,
}

impl<K: KeyType, V: ValueType> Default for WorkerBuffers<K, V> {
    fn default() -> Self {
        Self { stage: Vec::new(), ready: Vec::new(), tmp: Vec::new(), sticky: 0, sticky_left: 0 }
    }
}

impl<K: KeyType, V: ValueType> WorkerBuffers<K, V> {
    /// Keys parked in this slot (staged inserts + deletion buffer).
    pub(crate) fn parked(&self) -> usize {
        self.stage.len() + self.ready.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parked_counts_both_buffers() {
        let mut b: WorkerBuffers<u32, u32> = WorkerBuffers::default();
        assert_eq!(b.parked(), 0);
        b.stage.push(Entry::new(1, 1));
        b.ready.push(Entry::new(2, 2));
        b.ready.push(Entry::new(0, 0));
        assert_eq!(b.parked(), 3);
    }
}
