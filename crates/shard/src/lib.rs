//! # bgpq-shard — a sharded, relaxation-aware multi-queue front over BGPQ
//!
//! A single BGPQ serializes every operation through its root lock
//! (§4 of the paper); that is the right design *inside* one GPU, but it
//! caps scale-out. This crate composes `S` independent BGPQ instances
//! behind a MultiQueue-style router (Rihani et al.'s `c`-of-`S` sampled
//! relaxed delete-min, as popularized by SprayList-era relaxed queues):
//!
//! * **Inserts** stay batched and sticky — a worker always feeds the
//!   same shard, so BGPQ's partial buffer and root cache fire exactly
//!   as they do unsharded.
//! * **Deletes** sample `c` shards' published root minima (a single
//!   relaxed atomic load per shard, no locks) and take a whole batch
//!   from the best; misses fall back to work stealing and then to an
//!   exact full sweep, so emptiness at quiescence is precise and drains
//!   are complete.
//! * **Observability** — [`QualityStats`] records per-delete rank
//!   error (how many shards advertised smaller minima than what a
//!   delete returned) and the router exposes per-shard load imbalance,
//!   so the relaxation is measured, not assumed. With exact hints at
//!   quiescence the rank error of a delete is bounded by `S - c`.
//! * **Buffered mode** — with [`ShardedOptions::buffer`] set
//!   ([`pq_api::BufferPolicy`]), each worker stages inserts in a
//!   bounded per-slot buffer (flushed as k-wide batches) and serves
//!   deletes from a local deletion buffer refilled by one wide
//!   `delete_min` from a sticky sampled shard — the "Engineering
//!   MultiQueues" buffering/stickiness optimizations, amortizing the
//!   router's sampling and the shards' root locks over whole batches.
//!   Parked keys stay visible to `len`, drains and emptiness sweeps.
//!
//! The router ([`ShardedBgpq`]) is generic over the same
//! [`bgpq_runtime::Platform`] as the heap itself; [`CpuShardedBgpq`]
//! instantiates it on real threads, and the gpu-sim platform models an
//! SM-partitioned or multi-GPU deployment (one shard per partition).
//!
//! Relaxed ordering is safe for the workspace's applications: A*, SSSP
//! and knapsack B&B all tolerate out-of-order pops via stale-label
//! guards and incumbent pruning (they already run on SprayList), and
//! their termination tests rely only on the exact-emptiness property
//! the full sweep provides.

mod buffer;
pub mod cpu;
pub mod quality;
pub mod router;

pub use cpu::{worker_id, CpuShardedBgpq, ShardedBgpqFactory};
pub use pq_api::BufferPolicy;
pub use quality::{QualitySnapshot, QualityStats};
pub use router::{
    BreakerState, RecoveryOptions, Salvager, ShardedBgpq, ShardedOptions, DEFAULT_BUFFER_SLOTS,
};
