//! The sharded router: `S` independent BGPQ instances behind a
//! MultiQueue-style front.
//!
//! * **Inserts** route whole batches to one shard chosen by the
//!   caller's sticky affinity, so each shard still sees the sorted,
//!   batch-at-a-time traffic its partial buffer and root cache are
//!   built for (§3.2/§4.3 of the paper apply per shard unchanged).
//! * **Deletes** sample `c` of `S` shards, compare their cached
//!   root-min hints ([`Bgpq::min_hint_bits`]) without taking any locks,
//!   and take a batch from the best. If the best raced empty the
//!   remaining sampled shards are tried in hint order (work stealing);
//!   if all sampled shards miss, an exact sweep attempts a real delete
//!   on *every* shard before reporting emptiness — so quiescent
//!   emptiness and full drains remain precise even though ordering
//!   between shards is relaxed.
//!
//! The router is generic over [`Platform`]: the same code runs on
//! `CpuPlatform` (real threads; see [`crate::cpu`]) and on the gpu-sim
//! scheduler, where each shard models a queue private to one GPU / SM
//! partition.
//!
//! ## Failure handling: circuit breaker per shard
//!
//! A shard that fails (poisoned heap, lock timeout) trips its breaker
//! **Open**: it is excluded from routing, sampling and sweeps, and the
//! survivors absorb its traffic. Without recovery configured that is
//! permanent — the original fail-stop behaviour. With
//! [`ShardedOptions::recovery`] set (and a salvager installed, see
//! [`ShardedBgpq::with_platforms_recovering`]), the breaker follows the
//! classic state machine:
//!
//! * **Open** — after an exponential, jittered backoff (measured in
//!   router operations, so it is deterministic per schedule and needs
//!   no clock), the next operation to notice the expired deadline
//!   probes the shard: it waits for in-flight operations to drain,
//!   salvages the crashed heap through the installed salvager
//!   (`bgpq-recover` on the CPU platform), and rebuilds it from its own
//!   recovered keys (spilling to survivors if the home shard refuses).
//! * **Half-open** — the rebuilt shard serves trial traffic. Each
//!   successful operation burns one trial token; a failure re-opens the
//!   breaker with a doubled backoff.
//! * **Closed** — trial traffic succeeded; the shard is fully
//!   re-admitted.
//!
//! Key accounting is conservative and loud: every key a salvage could
//! not recover is counted in [`QualitySnapshot::keys_lost`] — loss is
//! never silent.

use crate::quality::{QualitySnapshot, QualityStats};
#[cfg(any(test, feature = "mutations"))]
use bgpq::Mutation;
use bgpq::{Bgpq, BgpqOptions};
use bgpq_recover::SalvageReport;
use bgpq_runtime::Platform;
use pq_api::{Entry, KeyType, OpStats, QueueError, ValueType};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};

/// Configuration of a [`ShardedBgpq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedOptions {
    /// Number of independent BGPQ shards `S`.
    pub shards: usize,
    /// Shards sampled per delete `c` (clamped to `1..=S`). `c = S`
    /// degenerates to always taking the globally best hint.
    pub sample: usize,
    /// Per-shard heap configuration. Every shard is built with the same
    /// options; note the heap preallocates `max_nodes * node_capacity`
    /// entries per shard, so total memory scales with `S`.
    pub queue: BgpqOptions,
    /// Circuit-breaker recovery for crashed shards. `None` (the
    /// default) keeps quarantine permanent; `Some` enables salvage,
    /// rebuild and re-admission — provided the front also installs a
    /// salvager (the CPU front does automatically; see
    /// [`ShardedBgpq::with_platforms_recovering`]).
    pub recovery: Option<RecoveryOptions>,
}

impl ShardedOptions {
    pub fn new(shards: usize, sample: usize, queue: BgpqOptions) -> Self {
        Self { shards, sample, queue, recovery: None }
    }

    /// Enable circuit-breaker recovery with the given policy.
    pub fn with_recovery(mut self, recovery: RecoveryOptions) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Options where *each shard* can hold `items` keys with node
    /// capacity `k`. Sizing every shard for the full workload is
    /// deliberate: sticky affinity means a single producer thread sends
    /// everything to one shard, and the heap's backing array does not
    /// grow.
    pub fn with_capacity_for(shards: usize, sample: usize, k: usize, items: usize) -> Self {
        Self { shards, sample, queue: BgpqOptions::with_capacity_for(k, items), recovery: None }
    }

    pub fn validate(&self) {
        assert!(self.shards >= 1, "need at least one shard");
        assert!(self.sample >= 1, "must sample at least one shard");
        self.queue.validate();
    }
}

impl Default for ShardedOptions {
    fn default() -> Self {
        Self { shards: 4, sample: 2, queue: BgpqOptions::default(), recovery: None }
    }
}

/// Circuit-breaker policy for shard recovery. All deadlines are in
/// *router operations* (one tick per `try_insert` / `try_delete_min`),
/// not wall time: deterministic per schedule, meaningful on both the
/// thread and the gpu-sim platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryOptions {
    /// Router operations to wait before the first salvage probe of a
    /// freshly opened breaker. Doubled on each re-open (pre-jitter).
    pub base_backoff_ops: u64,
    /// Cap on the backoff growth (pre-jitter).
    pub max_backoff_ops: u64,
    /// Successful shard operations required in half-open before the
    /// breaker closes and the shard counts as re-admitted.
    pub trial_ops: u64,
    /// Salvage attempts per shard before its quarantine becomes
    /// permanent after all (a shard that keeps crashing is hardware,
    /// not luck). `0` means unlimited.
    pub max_generations: u32,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        Self { base_backoff_ops: 64, max_backoff_ops: 4096, trial_ops: 8, max_generations: 8 }
    }
}

/// Observable state of one shard's circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Serving normally.
    Closed,
    /// Quarantined: excluded from routing until a salvage probe (or
    /// forever, when recovery is off or generations are exhausted).
    Open,
    /// Salvaged and rebuilt; serving trial traffic.
    HalfOpen,
}

const CLOSED: u8 = 0;
const OPEN: u8 = 1;
const HALF_OPEN: u8 = 2;

/// How long a salvage probe spins waiting for a quarantined shard's
/// straggler operations to drain before giving up and rescheduling.
const QUIESCE_SPINS: u32 = 100_000;

/// Per-shard breaker: state machine plus the bookkeeping recovery
/// needs (probe deadline, attempt generation, trial budget, and an
/// in-flight count so salvage can wait out stragglers that passed the
/// quarantine check before the breaker opened).
#[derive(Debug)]
struct Breaker {
    state: AtomicU8,
    /// Salvage attempts so far; doubles the backoff and feeds jitter.
    generation: AtomicU32,
    /// Global op-count after which the next probe may run (Open only).
    probe_at: AtomicU64,
    /// Successful trial operations still required to close (HalfOpen).
    trial_left: AtomicU64,
    /// Probe mutual exclusion: only one operation salvages at a time.
    recovering: AtomicBool,
    /// Operations currently inside this shard's heap.
    inflight: AtomicU64,
}

impl Breaker {
    fn new() -> Self {
        Self {
            state: AtomicU8::new(CLOSED),
            generation: AtomicU32::new(0),
            probe_at: AtomicU64::new(0),
            trial_left: AtomicU64::new(0),
            recovering: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
        }
    }
}

/// Decrement-on-drop in-flight token. Drop runs during unwind too, so
/// an operation killed inside a shard (an injected panic, say) still
/// releases its token and cannot wedge later salvage quiescence.
struct InflightGuard<'a>(&'a AtomicU64);

impl<'a> InflightGuard<'a> {
    fn enter(counter: &'a AtomicU64) -> Self {
        counter.fetch_add(1, Ordering::AcqRel);
        Self(counter)
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Platform capability hook: salvage one crashed heap (reset abandoned
/// locks, walk settled keys into the vec, reset to empty) and report
/// the accounting. On the CPU platform this is
/// [`bgpq_recover::salvage_heap`]; platforms without a safe
/// force-unlock simply install none and keep permanent quarantine.
pub type Salvager<K, V, P> =
    fn(&Bgpq<K, V, P>, &mut <P as Platform>::Worker, &mut Vec<Entry<K, V>>) -> SalvageReport;

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Backoff before generation `gen`'s probe of shard `shard`:
/// exponential (`base << gen`, capped) with deterministic jitter in
/// `[raw/2, 3*raw/2)` drawn from the (shard, generation) pair — shards
/// opened by one fault burst do not probe in lockstep.
fn backoff_ops(rec: &RecoveryOptions, shard: usize, gen: u32) -> u64 {
    let raw =
        rec.base_backoff_ops.saturating_mul(1u64 << gen.min(20)).min(rec.max_backoff_ops).max(1);
    let r = splitmix64(((shard as u64) << 32) | u64::from(gen).wrapping_add(1));
    raw / 2 + r % raw
}

/// xorshift64*: tiny, allocation-free PRNG for shard sampling. The
/// caller owns the state (one word per worker), keeping the router
/// itself stateless across operations.
#[inline]
fn next_u64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// Per-worker routing scratch: the sampled-delete work lists (live
/// shards, hint snapshot, sampled picks). Parked in the worker's
/// [`pq_api::ScratchSlot`] between deletes, alongside the heap's own
/// arena — distinct types share the slot, so the router taking its
/// scratch never conflicts with the shard heaps taking theirs inside
/// the same operation.
#[derive(Debug, Default)]
struct RouterScratch {
    live: Vec<usize>,
    hints: Vec<u64>,
    picks: Vec<usize>,
}

/// `S` BGPQ instances behind a relaxed, sampled router.
pub struct ShardedBgpq<K: KeyType, V: ValueType, P: Platform> {
    shards: Box<[Bgpq<K, V, P>]>,
    sample: usize,
    quality: QualityStats,
    /// Per-shard circuit breakers: a shard that poisoned itself or hit
    /// a lock timeout opens its breaker and is excluded from routing,
    /// sampling and sweeps — the surviving shards absorb its traffic.
    /// With `recovery` + `salvager` set, open breakers are probed,
    /// salvaged and re-admitted; otherwise quarantine is permanent.
    breakers: Box<[Breaker]>,
    /// Recovery policy; `None` keeps quarantine permanent.
    recovery: Option<RecoveryOptions>,
    /// Platform salvage capability; `None` keeps quarantine permanent.
    salvager: Option<Salvager<K, V, P>>,
    /// Router operation counter: the clock that backoff deadlines are
    /// measured against. Ticks only when recovery is configured.
    ops: AtomicU64,
    /// Number of breakers currently Open (fast path guard: zero means
    /// the per-op recovery scan is skipped entirely).
    open_shards: AtomicU64,
    /// Verification self-test mutation (see [`bgpq::Mutation`]), copied
    /// from the per-shard queue options so router-level mutations
    /// ([`bgpq::Mutation::SweepDiscardsOnTrip`]) are honored at this
    /// layer. Compiled out of production builds.
    #[cfg(any(test, feature = "mutations"))]
    mutation: Mutation,
}

impl<K: KeyType, V: ValueType, P: Platform> ShardedBgpq<K, V, P> {
    /// Build from one platform instance per shard (each shard owns its
    /// lock table). `platforms.len()` must equal `opts.shards`, and
    /// each platform needs at least `opts.queue.max_nodes + 1` locks.
    ///
    /// No salvager is installed, so even with [`ShardedOptions::recovery`]
    /// set quarantine stays permanent; use
    /// [`ShardedBgpq::with_platforms_recovering`] (or the CPU front,
    /// which wires it up automatically) for self-healing.
    pub fn with_platforms(platforms: Vec<P>, opts: ShardedOptions) -> Self {
        Self::build(platforms, opts, None)
    }

    /// [`ShardedBgpq::with_platforms`] plus a platform salvage hook:
    /// when `opts.recovery` is set, opened breakers are probed after
    /// backoff, crashed shards salvaged through `salvager`, rebuilt
    /// from their own recovered keys, and re-admitted via half-open
    /// trial traffic.
    pub fn with_platforms_recovering(
        platforms: Vec<P>,
        opts: ShardedOptions,
        salvager: Salvager<K, V, P>,
    ) -> Self {
        Self::build(platforms, opts, Some(salvager))
    }

    fn build(platforms: Vec<P>, opts: ShardedOptions, salvager: Option<Salvager<K, V, P>>) -> Self {
        opts.validate();
        assert_eq!(platforms.len(), opts.shards, "one platform per shard");
        let shards: Vec<Bgpq<K, V, P>> =
            platforms.into_iter().map(|p| Bgpq::with_platform(p, opts.queue)).collect();
        let breakers = (0..opts.shards).map(|_| Breaker::new()).collect();
        Self {
            shards: shards.into_boxed_slice(),
            sample: opts.sample.clamp(1, opts.shards),
            quality: QualityStats::new(),
            breakers,
            recovery: opts.recovery,
            salvager,
            ops: AtomicU64::new(0),
            open_shards: AtomicU64::new(0),
            #[cfg(any(test, feature = "mutations"))]
            mutation: opts.queue.mutation,
        }
    }

    /// Access-tag the front's shared coordination state (breaker
    /// states, in-flight tokens, the recovery op clock) for schedule
    /// exploration: maps to [`Platform::touch_shared`], a no-op outside
    /// the simulator. Reads conflict only with breaker transitions, so
    /// fault-free schedules keep their cross-shard independence.
    #[inline]
    fn touch_front(&self, w: &mut P::Worker, write: bool) {
        self.shards[0].platform().touch_shared(w, write);
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shards sampled per delete (after clamping to `1..=S`).
    pub fn sample(&self) -> usize {
        self.sample
    }

    /// Direct access to one shard (tests, invariant checks).
    pub fn shard(&self, i: usize) -> &Bgpq<K, V, P> {
        &self.shards[i]
    }

    /// Batch capacity `k` (identical across shards).
    pub fn node_capacity(&self) -> usize {
        self.shards[0].node_capacity()
    }

    /// Which shard an affinity token routes to.
    #[inline]
    pub fn shard_for(&self, affinity: usize) -> usize {
        affinity % self.shards.len()
    }

    /// Whether shard `i` has been taken out of rotation (breaker Open).
    /// Half-open shards are *live*: they serve trial traffic.
    pub fn is_quarantined(&self, i: usize) -> bool {
        self.breakers[i].state.load(Ordering::Relaxed) == OPEN
    }

    /// Number of shards currently quarantined.
    pub fn quarantined_count(&self) -> usize {
        self.breakers.iter().filter(|b| b.state.load(Ordering::Relaxed) == OPEN).count()
    }

    /// Observable breaker state of shard `i`.
    pub fn breaker_state(&self, i: usize) -> BreakerState {
        match self.breakers[i].state.load(Ordering::Relaxed) {
            OPEN => BreakerState::Open,
            HALF_OPEN => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// Take shard `i` out of rotation (idempotent while Open). Called
    /// by the routing paths when a shard reports `Poisoned` or
    /// `LockTimeout`; also available to callers that detect a failure
    /// out of band. With recovery configured this schedules a salvage
    /// probe after an exponential, jittered backoff; each re-open
    /// doubles the wait.
    pub fn quarantine(&self, i: usize) {
        let b = &self.breakers[i];
        let prev = b.state.swap(OPEN, Ordering::SeqCst);
        if prev == OPEN {
            return;
        }
        self.open_shards.fetch_add(1, Ordering::Relaxed);
        self.quality.record_quarantine();
        OpStats::bump(&self.shards[i].stats().shard_quarantines);
        if let Some(rec) = &self.recovery {
            let gen = b.generation.fetch_add(1, Ordering::Relaxed);
            let now = self.ops.load(Ordering::Relaxed);
            b.probe_at.store(now.saturating_add(backoff_ops(rec, i, gen)), Ordering::Relaxed);
        }
    }

    /// Advance the recovery clock and run due salvage probes. Called at
    /// the top of every routing operation; free when recovery is off,
    /// one relaxed increment plus one load when no breaker is open.
    fn tick(&self, w: &mut P::Worker) {
        let (Some(rec), Some(salvager)) = (self.recovery, self.salvager) else {
            return;
        };
        // The op clock is written by every operation: with recovery
        // armed, front traffic is genuinely order-sensitive (which op
        // crosses a probe deadline first matters).
        self.touch_front(w, true);
        let now = self.ops.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
        if self.open_shards.load(Ordering::Relaxed) == 0 {
            return;
        }
        for i in 0..self.shards.len() {
            let b = &self.breakers[i];
            if b.state.load(Ordering::Acquire) != OPEN
                || now < b.probe_at.load(Ordering::Relaxed)
                || (rec.max_generations != 0
                    && b.generation.load(Ordering::Relaxed) > rec.max_generations)
            {
                continue;
            }
            if b.recovering.swap(true, Ordering::Acquire) {
                continue; // another operation is already probing
            }
            if b.state.load(Ordering::Acquire) == OPEN {
                self.probe_shard(i, w, salvager, &rec, now);
            }
            b.recovering.store(false, Ordering::Release);
        }
    }

    /// One salvage probe: wait for stragglers, salvage, rebuild, and
    /// move the shard to half-open. Runs under the breaker's
    /// `recovering` lock with the breaker Open, so no routing path can
    /// enter the shard concurrently.
    fn probe_shard(
        &self,
        i: usize,
        w: &mut P::Worker,
        salvager: Salvager<K, V, P>,
        rec: &RecoveryOptions,
        now: u64,
    ) {
        self.quality.record_probe();
        // The whole probe mutates front state (quiesce reads, breaker
        // transition to half-open); the salvage itself tags the shard's
        // own lock domain through the salvager.
        self.touch_front(w, true);
        let b = &self.breakers[i];

        // Quiescence: operations that passed the quarantine check just
        // before the breaker opened may still be inside (or unwinding
        // out of) the shard. Their in-flight tokens release even on
        // panic; wait them out, bounded — a wedged straggler (its
        // watchdog has not fired yet) just postpones this probe.
        let mut spins = 0u32;
        while b.inflight.load(Ordering::Acquire) != 0 {
            spins += 1;
            if spins > QUIESCE_SPINS {
                b.probe_at
                    .store(now.saturating_add(rec.base_backoff_ops.max(1)), Ordering::Relaxed);
                return;
            }
            std::hint::spin_loop();
        }

        let mut recovered: Vec<Entry<K, V>> = Vec::new();
        let report = salvager(&self.shards[i], w, &mut recovered);
        self.quality.record_salvage(report.keys_recovered as u64, report.keys_lost as u64);

        // Rebuild the shard from its own keys; spill chunks the freshly
        // reset home shard refuses (it re-poisoned, or raced Full) to
        // the survivors, and count anything nobody accepted as lost —
        // loudly, never silently.
        let k = self.shards[i].node_capacity();
        let mut residue = 0u64;
        for chunk in recovered.chunks(k) {
            if self.shards[i].try_insert(w, chunk).is_ok() {
                continue;
            }
            if !self.spill(w, i, chunk) {
                residue += chunk.len() as u64;
            }
        }
        if residue > 0 {
            self.quality.record_lost(residue);
        }

        // Trial service: live again, but each success burns a token and
        // any failure re-opens with a doubled backoff.
        b.trial_left.store(rec.trial_ops.max(1), Ordering::Relaxed);
        b.state.store(HALF_OPEN, Ordering::Release);
        self.open_shards.fetch_sub(1, Ordering::Relaxed);
    }

    /// Offer `chunk` to any live shard other than `from`. Returns
    /// whether someone took it.
    fn spill(&self, w: &mut P::Worker, from: usize, chunk: &[Entry<K, V>]) -> bool {
        let s = self.shards.len();
        for off in 1..s {
            let i = (from + off) % s;
            if self.is_quarantined(i) {
                continue;
            }
            if self.shards[i].try_insert(w, chunk).is_ok() {
                return true;
            }
        }
        false
    }

    /// Note a successful operation against shard `i`: in half-open it
    /// burns one trial token, and the token that reaches zero closes
    /// the breaker (full re-admission).
    #[inline]
    fn note_success(&self, i: usize) {
        let b = &self.breakers[i];
        if b.state.load(Ordering::Relaxed) != HALF_OPEN {
            return;
        }
        if b.trial_left.fetch_sub(1, Ordering::AcqRel) == 1
            && b.state
                .compare_exchange(HALF_OPEN, CLOSED, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            self.quality.record_readmission();
        }
    }

    /// Total items across *live* shards. Exact at quiescence. A
    /// quarantined shard's count is unreliable (it crashed mid-flight)
    /// and its keys are unreachable, so it is excluded.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.is_quarantined(i))
            .map(|(_, s)| s.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Relaxation counters recorded by the delete path.
    pub fn quality(&self) -> QualitySnapshot {
        self.quality.snapshot()
    }

    pub fn reset_quality(&self) {
        self.quality.reset();
    }

    /// All shards' operation counters folded into one.
    pub fn merged_stats(&self) -> OpStats {
        let total = OpStats::new();
        for s in self.shards.iter() {
            total.merge(s.stats());
        }
        total
    }

    /// Ratio of the most-loaded shard's inserted-item count to the
    /// mean (1.0 = perfectly balanced; meaningful after inserts ran).
    pub fn load_imbalance(&self) -> f64 {
        let loads: Vec<u64> =
            self.shards.iter().map(|s| s.stats().snapshot().items_inserted).collect();
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / loads.len() as f64;
        *loads.iter().max().unwrap() as f64 / mean
    }

    /// Insert a sorted-or-not batch into the shard selected by
    /// `affinity` (callers keep this sticky per worker so consecutive
    /// batches hit the same shard's partial buffer).
    ///
    /// Panics on failure; prefer [`ShardedBgpq::try_insert`] when the
    /// caller wants backpressure and fail-over as values.
    pub fn insert(&self, w: &mut P::Worker, affinity: usize, items: &[Entry<K, V>]) {
        self.try_insert(w, affinity, items)
            .unwrap_or_else(|e| panic!("sharded BGPQ insert failed: {e}"));
    }

    /// Insert with failure handling: route to the affinity shard, and
    /// if that shard is quarantined — or fails during the attempt —
    /// redistribute to the next live shard (round robin from the home
    /// shard, so a dead shard's producers spread over the survivors).
    ///
    /// `Err(Full)` is backpressure, not failure: the shard stays live
    /// (deletes make room) and no key is taken. A shard returning
    /// `Poisoned` or `LockTimeout` is quarantined and the insert moves
    /// on; only when every live shard refused does the error surface —
    /// the last `Full` if any shard was merely full, else `Poisoned`.
    pub fn try_insert(
        &self,
        w: &mut P::Worker,
        affinity: usize,
        items: &[Entry<K, V>],
    ) -> Result<(), QueueError> {
        self.tick(w);
        // Routing reads the breaker states; conflicts only with trips.
        self.touch_front(w, false);
        let s = self.shards.len();
        let home = self.shard_for(affinity);
        let mut full: Option<QueueError> = None;
        for off in 0..s {
            let i = (home + off) % s;
            if self.is_quarantined(i) {
                continue;
            }
            let r = {
                let _g = InflightGuard::enter(&self.breakers[i].inflight);
                self.shards[i].try_insert(w, items)
            };
            match r {
                Ok(()) => {
                    self.note_success(i);
                    return Ok(());
                }
                Err(e @ QueueError::Full { .. }) => full = Some(e),
                Err(_) => {
                    self.touch_front(w, true);
                    self.quarantine(i);
                }
            }
        }
        Err(full.unwrap_or(QueueError::Poisoned))
    }

    /// Relaxed delete-min: sample `c` shards through `rng`, take up to
    /// `count` entries from the best-hinted one, steal from the other
    /// sampled shards on a miss, and finish with an exact sweep of all
    /// shards before returning 0. Appended entries are ascending (they
    /// come from a single shard's delete).
    pub fn delete_min(
        &self,
        w: &mut P::Worker,
        rng: &mut u64,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
    ) -> usize {
        self.try_delete_min(w, rng, out, count)
            .unwrap_or_else(|e| panic!("sharded BGPQ delete_min failed: {e}"))
    }

    /// Relaxed delete-min with failure handling: quarantined shards are
    /// excluded from sampling, stealing and the exact sweep; a shard
    /// that fails mid-attempt is quarantined and the delete continues
    /// on the survivors. `Ok(0)` means every *live* shard was observed
    /// empty (exact at quiescence); `Err(Poisoned)` means no live shard
    /// remains.
    pub fn try_delete_min(
        &self,
        w: &mut P::Worker,
        rng: &mut u64,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
    ) -> Result<usize, QueueError> {
        self.tick(w);
        self.touch_front(w, false);
        // Take the routing scratch out of the worker's slot for the
        // whole delete (the shards' own arenas are a different type in
        // the same slot). A panicking shard op drops it; the next
        // delete just rebuilds.
        let mut rs = self.scratch_slot(w).take::<RouterScratch>().unwrap_or_default();
        let r = self.try_delete_min_with(w, rng, out, count, &mut rs);
        self.scratch_slot(w).put(rs);
        r
    }

    /// The worker's scratch parking spot, reached through any shard's
    /// platform (slot storage lives on the worker, not the platform).
    #[inline]
    fn scratch_slot<'a>(&self, w: &'a mut P::Worker) -> &'a mut pq_api::ScratchSlot {
        self.shards[0].platform().scratch_slot(w)
    }

    /// A shard delete under an in-flight token, so a later salvage
    /// probe can wait this operation out (the token releases on panic
    /// too — see [`InflightGuard`]).
    #[inline]
    fn guarded_delete(
        &self,
        i: usize,
        w: &mut P::Worker,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
    ) -> Result<usize, QueueError> {
        let _g = InflightGuard::enter(&self.breakers[i].inflight);
        self.shards[i].try_delete_min(w, out, count)
    }

    fn try_delete_min_with(
        &self,
        w: &mut P::Worker,
        rng: &mut u64,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
        rs: &mut RouterScratch,
    ) -> Result<usize, QueueError> {
        let s = self.shards.len();
        let start = out.len();
        // Breaker-trip snapshot for the SweepDiscardsOnTrip mutation:
        // the mutated sweep compares against this to "notice" a trip
        // that happened while the delete was in flight.
        #[cfg(any(test, feature = "mutations"))]
        let trips_at_entry = self.quarantined_count();
        let RouterScratch { live, hints, picks } = rs;
        live.clear();
        live.extend((0..s).filter(|&i| !self.is_quarantined(i)));
        if live.is_empty() {
            return Err(QueueError::Poisoned);
        }

        if live.len() == 1 {
            let i = live[0];
            return match self.guarded_delete(i, w, out, count) {
                Ok(got) => {
                    if got > 0 {
                        self.quality.record_delete(&[], 0, out[start].key.to_ordered_bits(), false);
                    }
                    self.note_success(i);
                    Ok(got)
                }
                Err(_) => {
                    self.touch_front(w, true);
                    self.quarantine(i);
                    Err(QueueError::Poisoned)
                }
            };
        }

        // Lock-free routing snapshot: every shard's published root-min
        // (a poisoned shard parks its hint at `u64::MAX`, but we route
        // over the live list regardless). Each hint read races that
        // shard's root publishes — tag it at the shard's root lock.
        hints.clear();
        hints.extend(self.shards.iter().map(|q| {
            q.platform().touch(w, 0, false);
            q.min_hint_bits()
        }));

        let c = self.sample.min(live.len());
        picks.clear();
        if c >= live.len() {
            picks.extend(live.iter().copied());
        } else {
            while picks.len() < c {
                let i = live[(next_u64(rng) % live.len() as u64) as usize];
                if !picks.contains(&i) {
                    picks.push(i);
                }
            }
        }
        picks.sort_unstable_by_key(|&i| hints[i]);

        let mut clean_miss = false;
        for (attempt, &i) in picks.iter().enumerate() {
            match self.guarded_delete(i, w, out, count) {
                Ok(0) => {
                    clean_miss = true;
                    self.note_success(i);
                }
                Ok(got) => {
                    // SweepDiscardsOnTrip: a breaker tripped while this
                    // delete was in flight; the mutated router "rolls
                    // back" the batch and retries from a clean miss —
                    // but the shard already handed the keys over, so
                    // they are silently lost (the bug the explorer's
                    // accounting oracle must catch).
                    #[cfg(any(test, feature = "mutations"))]
                    if self.mutation == Mutation::SweepDiscardsOnTrip
                        && self.quarantined_count() > trips_at_entry
                    {
                        out.truncate(start);
                        clean_miss = true;
                        self.note_success(i);
                        continue;
                    }
                    self.quality.record_delete(
                        hints,
                        i,
                        out[start].key.to_ordered_bits(),
                        attempt > 0,
                    );
                    self.note_success(i);
                    return Ok(got);
                }
                Err(_) => {
                    self.touch_front(w, true);
                    self.quarantine(i);
                }
            }
        }

        // Exact fallback: a hint of `u64::MAX` means "empty or never
        // published", so sampled misses do not prove emptiness. Attempt
        // a real delete on every live shard; only a full sweep of
        // misses reports 0, which at quiescence is precise.
        self.quality.record_full_sweep();
        for &i in live.iter() {
            if self.is_quarantined(i) {
                continue;
            }
            match self.guarded_delete(i, w, out, count) {
                Ok(0) => {
                    clean_miss = true;
                    self.note_success(i);
                }
                Ok(got) => {
                    // See the sampled loop: the mutated exact sweep
                    // also rolls back on an observed trip.
                    #[cfg(any(test, feature = "mutations"))]
                    if self.mutation == Mutation::SweepDiscardsOnTrip
                        && self.quarantined_count() > trips_at_entry
                    {
                        out.truncate(start);
                        clean_miss = true;
                        self.note_success(i);
                        continue;
                    }
                    self.quality.record_delete(hints, i, out[start].key.to_ordered_bits(), true);
                    self.note_success(i);
                    return Ok(got);
                }
                Err(_) => {
                    self.touch_front(w, true);
                    self.quarantine(i);
                }
            }
        }
        if clean_miss {
            Ok(0)
        } else {
            Err(QueueError::Poisoned)
        }
    }

    /// Remove every item from live shards (shard by shard; the
    /// concatenation is sorted per shard, not globally). Returns the
    /// number drained. Quarantined shards are skipped — their contents
    /// are unreachable by design.
    pub fn drain(&self, w: &mut P::Worker, out: &mut Vec<Entry<K, V>>) -> usize {
        self.shards
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.is_quarantined(i))
            .map(|(_, s)| s.drain(w, out))
            .sum()
    }

    /// Discard every item in live shards. Returns the number discarded.
    pub fn clear(&self, w: &mut P::Worker) -> usize {
        self.shards
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.is_quarantined(i))
            .map(|(_, s)| s.clear(w))
            .sum()
    }

    /// Check every live shard's heap invariants (quiescent callers
    /// only). Returns the total item count. Quarantined shards are
    /// skipped: a crashed shard's invariants are void (that is why it
    /// was quarantined).
    pub fn check_invariants(&self) -> usize {
        self.shards
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.is_quarantined(i))
            .map(|(_, s)| s.check_invariants())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_runtime::{CpuPlatform, CpuWorker};

    fn sharded(s: usize, c: usize, k: usize) -> ShardedBgpq<u32, u32, CpuPlatform> {
        let queue = BgpqOptions { node_capacity: k, max_nodes: 256, ..Default::default() };
        let platforms = (0..s).map(|_| CpuPlatform::new(queue.max_nodes + 1)).collect();
        ShardedBgpq::with_platforms(platforms, ShardedOptions::new(s, c, queue))
    }

    #[test]
    fn routes_inserts_by_affinity() {
        let q = sharded(4, 2, 8);
        let mut w = CpuWorker::new();
        for a in 0..8usize {
            q.insert(&mut w, a, &[Entry::new(a as u32, 0)]);
        }
        // affinity a and a+4 land on the same shard.
        for i in 0..4 {
            assert_eq!(q.shard(i).len(), 2, "shard {i}");
        }
        assert_eq!(q.len(), 8);
    }

    #[test]
    fn drains_exactly_across_shards() {
        let q = sharded(3, 1, 4);
        let mut w = CpuWorker::new();
        let mut rng = 7u64;
        for i in 0..60u32 {
            q.insert(&mut w, (i % 3) as usize, &[Entry::new(i, i)]);
        }
        let mut out = Vec::new();
        let mut got = 0;
        loop {
            let n = q.delete_min(&mut w, &mut rng, &mut out, 4);
            if n == 0 {
                break;
            }
            got += n;
        }
        assert_eq!(got, 60, "exact sweep must drain every shard");
        assert!(q.is_empty());
        let mut keys: Vec<u32> = out.iter().map(|e| e.key).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..60).collect::<Vec<_>>());
        assert_eq!(q.check_invariants(), 0);
    }

    #[test]
    fn single_shard_is_strict() {
        let q = sharded(1, 1, 4);
        let mut w = CpuWorker::new();
        let mut rng = 3u64;
        q.insert(&mut w, 0, &[Entry::new(9u32, 0), Entry::new(2, 0), Entry::new(5, 0)]);
        let mut out = Vec::new();
        assert_eq!(q.delete_min(&mut w, &mut rng, &mut out, 4), 3);
        assert_eq!(out.iter().map(|e| e.key).collect::<Vec<_>>(), vec![2, 5, 9]);
        assert_eq!(q.quality().rank_error_sum, 0);
    }

    #[test]
    fn sampled_delete_prefers_best_hint() {
        let q = sharded(2, 2, 4);
        let mut w = CpuWorker::new();
        let mut rng = 1u64;
        q.insert(&mut w, 0, &[Entry::new(100u32, 0)]);
        q.insert(&mut w, 1, &[Entry::new(5u32, 0)]);
        let mut out = Vec::new();
        // c == S: both hints visible, must take the smaller minimum.
        assert_eq!(q.delete_min(&mut w, &mut rng, &mut out, 1), 1);
        assert_eq!(out[0].key, 5);
        assert_eq!(q.quality().rank_error_sum, 0, "c = S never skips a smaller shard");
    }

    #[test]
    fn quarantined_shard_is_bypassed_for_inserts_and_deletes() {
        use bgpq_runtime::{CpuPlatform, FaultAction, FaultPlan, InjectionPoint};
        use std::sync::Arc;

        // Shard 0 gets a fault plan that panics its first insert
        // heapify; the other shards are healthy.
        let queue = BgpqOptions { node_capacity: 2, max_nodes: 64, ..Default::default() };
        let plan = Arc::new(FaultPlan::new().with_rule(
            InjectionPoint::MidInsertHeapify,
            1,
            FaultAction::Panic,
        ));
        let platforms: Vec<CpuPlatform> = (0..3)
            .map(|i| {
                let p = CpuPlatform::new(queue.max_nodes + 1);
                if i == 0 {
                    p.with_faults(plan.clone())
                } else {
                    p
                }
            })
            .collect();
        let q: ShardedBgpq<u32, u32, CpuPlatform> =
            ShardedBgpq::with_platforms(platforms, ShardedOptions::new(3, 2, queue));
        let mut w = CpuWorker::new();

        // Crash shard 0 directly (the router only sees the poisoned
        // state afterwards, as it would from another thread's crash).
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for i in 0..32u32 {
                q.shard(0).insert(&mut w, &[Entry::new(i, 0), Entry::new(i + 100, 0)]);
            }
        }));
        assert!(r.is_err(), "injected panic must fire");
        assert!(q.shard(0).is_poisoned());

        // Affinity 0 points at the dead shard; try_insert must
        // redistribute, quarantine it, and succeed on a survivor.
        q.try_insert(&mut w, 0, &[Entry::new(7u32, 7)]).expect("redistributed insert");
        assert!(q.is_quarantined(0));
        assert_eq!(q.quarantined_count(), 1);
        assert_eq!(q.quality().quarantines, 1);
        assert_eq!(q.shard(0).stats().snapshot().shard_quarantines, 1);
        assert_eq!(q.len(), 1, "len counts only live shards");

        // Deletes skip the quarantined shard and drain the survivors.
        let mut rng = 5u64;
        let mut out = Vec::new();
        assert_eq!(q.try_delete_min(&mut w, &mut rng, &mut out, 2).unwrap(), 1);
        assert_eq!(out[0].key, 7);
        assert_eq!(q.try_delete_min(&mut w, &mut rng, &mut out, 2).unwrap(), 0);
        assert_eq!(q.check_invariants(), 0, "invariant sweep skips the quarantined shard");
    }

    #[test]
    fn all_shards_quarantined_reports_poisoned() {
        let q = sharded(2, 1, 4);
        let mut w = CpuWorker::new();
        q.quarantine(0);
        q.quarantine(1);
        q.quarantine(1); // idempotent
        assert_eq!(q.quarantined_count(), 2);
        assert_eq!(q.quality().quarantines, 2);
        assert!(matches!(
            q.try_insert(&mut w, 0, &[Entry::new(1u32, 1)]),
            Err(QueueError::Poisoned)
        ));
        let mut rng = 9u64;
        let mut out = Vec::new();
        assert!(matches!(
            q.try_delete_min(&mut w, &mut rng, &mut out, 1),
            Err(QueueError::Poisoned)
        ));
        assert!(out.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn full_shard_is_backpressure_not_quarantine() {
        // One tiny shard: filling it must yield Full, leave it live,
        // and deleting makes room again.
        let queue = BgpqOptions { node_capacity: 2, max_nodes: 2, ..Default::default() };
        let platforms = vec![CpuPlatform::new(queue.max_nodes + 1)];
        let q: ShardedBgpq<u32, u32, CpuPlatform> =
            ShardedBgpq::with_platforms(platforms, ShardedOptions::new(1, 1, queue));
        let mut w = CpuWorker::new();
        while q.try_insert(&mut w, 0, &[Entry::new(1, 0), Entry::new(2, 0)]).is_ok() {}
        assert!(matches!(
            q.try_insert(&mut w, 0, &[Entry::new(3, 0), Entry::new(4, 0)]),
            Err(QueueError::Full { .. })
        ));
        assert_eq!(q.quarantined_count(), 0, "Full must not quarantine");
        let mut rng = 3u64;
        let mut out = Vec::new();
        q.try_delete_min(&mut w, &mut rng, &mut out, 2).unwrap();
        q.try_insert(&mut w, 0, &[Entry::new(3, 0), Entry::new(4, 0)])
            .expect("room freed by delete");
    }

    #[test]
    fn crashed_shard_is_salvaged_and_readmitted_within_bounded_probes() {
        use bgpq_runtime::{FaultAction, FaultPlan, InjectionPoint};
        use std::sync::Arc;

        // Shard 0 crashes on its first insert heapify; recovery is
        // enabled with tiny backoffs so the drill stays fast.
        let queue = BgpqOptions { node_capacity: 2, max_nodes: 64, ..Default::default() };
        let rec = RecoveryOptions {
            base_backoff_ops: 4,
            max_backoff_ops: 16,
            trial_ops: 2,
            max_generations: 4,
        };
        let plan = Arc::new(FaultPlan::new().with_rule(
            InjectionPoint::MidInsertHeapify,
            1,
            FaultAction::Panic,
        ));
        let platforms: Vec<CpuPlatform> = (0..3)
            .map(|i| {
                let p = CpuPlatform::new(queue.max_nodes + 1);
                if i == 0 {
                    p.with_faults(plan.clone())
                } else {
                    p
                }
            })
            .collect();
        let q: ShardedBgpq<u32, u32, CpuPlatform> = ShardedBgpq::with_platforms_recovering(
            platforms,
            ShardedOptions::new(3, 2, queue).with_recovery(rec),
            bgpq_recover::salvage_heap,
        );
        let mut w = CpuWorker::new();

        // Crash shard 0 mid-insert, counting the batches that settled.
        let mut settled = 0u32;
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for i in 0..32u32 {
                q.shard(0).insert(&mut w, &[Entry::new(i, 0), Entry::new(i + 100, 0)]);
                settled = i + 1;
            }
        }));
        assert!(r.is_err(), "injected panic must fire");
        assert!(q.shard(0).is_poisoned());

        // The next routed insert notices, quarantines, and fails over.
        q.try_insert(&mut w, 0, &[Entry::new(7u32, 7)]).expect("redistributed insert");
        assert!(q.is_quarantined(0));
        assert_eq!(q.breaker_state(0), BreakerState::Open);

        // Pump traffic over rotating affinities (so the re-admitted
        // shard sees trial ops from its returning producers); the
        // breaker must probe, salvage, trial and close within a small
        // bounded number of operations.
        let mut rng = 11u64;
        let mut pumped = Vec::new();
        let mut ops = 0usize;
        while q.breaker_state(0) != BreakerState::Closed {
            ops += 1;
            assert!(ops <= 400, "breaker must close within bounded probes");
            q.try_insert(&mut w, ops, &[Entry::new(1_000 + ops as u32, 0)]).unwrap();
            pumped.push(1_000 + ops as u32);
        }
        let s = q.quality();
        assert_eq!(s.salvages, 1, "one salvage pass rebuilt the shard");
        assert_eq!(s.readmissions, 1, "trial traffic closed the breaker");
        assert!(s.probes >= 1);
        assert_eq!(s.keys_lost, 2, "exactly one in-flight batch is reported lost, not silent");
        assert_eq!(
            s.keys_recovered,
            u64::from(settled) * 2,
            "every other accepted key is walked out"
        );
        assert_eq!(q.quarantined_count(), 0);

        // The re-admitted shard serves again: home-affinity inserts
        // land on it, and a full drain conserves keys exactly — the
        // queue accepted `settled * 2 + 2` keys before the crash (the
        // dying insert had already merged into the heap), lost a
        // reported 2 of them, and everything else drains once each.
        // (Which two keys were lost is not specified: a crashed
        // insert-heapify may have swapped batch keys into the heap and
        // carried settled ones on its stack.)
        q.try_insert(&mut w, 0, &[Entry::new(9_999u32, 0)]).unwrap();
        let mut out = Vec::new();
        while q.try_delete_min(&mut w, &mut rng, &mut out, 2).unwrap() > 0 {}
        let got: Vec<u32> = out.iter().map(|e| e.key).collect();
        let accepted = u64::from(settled) * 2 + 2;
        assert_eq!(
            got.len() as u64,
            accepted - s.keys_lost + 2 + pumped.len() as u64,
            "drain returns every accepted key minus exactly the reported loss"
        );
        let offered: std::collections::HashSet<u32> = (0..32u32)
            .flat_map(|i| [i, i + 100])
            .chain([7, 9_999])
            .chain(pumped.iter().copied())
            .collect();
        let mut uniq = got.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), got.len(), "no key drains twice");
        assert!(got.iter().all(|k| offered.contains(k)), "salvage never invents keys");
        assert_eq!(q.check_invariants(), 0);
    }

    #[test]
    fn recovery_disabled_keeps_quarantine_permanent() {
        // Even with RecoveryOptions set, a router built without a
        // salvager (plain `with_platforms`) must never probe.
        let queue = BgpqOptions { node_capacity: 4, max_nodes: 64, ..Default::default() };
        let platforms = (0..2).map(|_| CpuPlatform::new(queue.max_nodes + 1)).collect();
        let q: ShardedBgpq<u32, u32, CpuPlatform> = ShardedBgpq::with_platforms(
            platforms,
            ShardedOptions::new(2, 1, queue).with_recovery(RecoveryOptions::default()),
        );
        let mut w = CpuWorker::new();
        q.quarantine(0);
        for i in 0..200u32 {
            // Full is fine (one small surviving shard); the point is
            // that hundreds of ticks never probe the open breaker.
            let _ = q.try_insert(&mut w, 1, &[Entry::new(i, 0)]);
        }
        assert_eq!(q.breaker_state(0), BreakerState::Open, "no salvager, no re-admission");
        assert_eq!(q.quality().probes, 0);
        assert_eq!(q.quality().salvages, 0);
    }

    #[test]
    fn merged_stats_fold_all_shards() {
        let q = sharded(4, 2, 8);
        let mut w = CpuWorker::new();
        for a in 0..4usize {
            q.insert(&mut w, a, &[Entry::new(1u32, 0), Entry::new(2, 0)]);
        }
        let total = q.merged_stats().snapshot();
        assert_eq!(total.inserts, 4);
        assert_eq!(total.items_inserted, 8);
        assert!((q.load_imbalance() - 1.0).abs() < 1e-12, "even affinity = balanced");
    }
}
