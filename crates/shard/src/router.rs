//! The sharded router: `S` independent BGPQ instances behind a
//! MultiQueue-style front.
//!
//! * **Inserts** route whole batches to one shard chosen by the
//!   caller's sticky affinity, so each shard still sees the sorted,
//!   batch-at-a-time traffic its partial buffer and root cache are
//!   built for (§3.2/§4.3 of the paper apply per shard unchanged).
//! * **Deletes** sample `c` of `S` shards, compare their cached
//!   root-min hints ([`Bgpq::min_hint_bits`]) without taking any locks,
//!   and take a batch from the best. If the best raced empty the
//!   remaining sampled shards are tried in hint order (work stealing);
//!   if all sampled shards miss, an exact sweep attempts a real delete
//!   on *every* shard before reporting emptiness — so quiescent
//!   emptiness and full drains remain precise even though ordering
//!   between shards is relaxed.
//!
//! The router is generic over [`Platform`]: the same code runs on
//! `CpuPlatform` (real threads; see [`crate::cpu`]) and on the gpu-sim
//! scheduler, where each shard models a queue private to one GPU / SM
//! partition.

use crate::quality::{QualitySnapshot, QualityStats};
use bgpq::{Bgpq, BgpqOptions};
use bgpq_runtime::Platform;
use pq_api::{Entry, KeyType, OpStats, QueueError, ValueType};
use std::sync::atomic::{AtomicBool, Ordering};

/// Configuration of a [`ShardedBgpq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedOptions {
    /// Number of independent BGPQ shards `S`.
    pub shards: usize,
    /// Shards sampled per delete `c` (clamped to `1..=S`). `c = S`
    /// degenerates to always taking the globally best hint.
    pub sample: usize,
    /// Per-shard heap configuration. Every shard is built with the same
    /// options; note the heap preallocates `max_nodes * node_capacity`
    /// entries per shard, so total memory scales with `S`.
    pub queue: BgpqOptions,
}

impl ShardedOptions {
    pub fn new(shards: usize, sample: usize, queue: BgpqOptions) -> Self {
        Self { shards, sample, queue }
    }

    /// Options where *each shard* can hold `items` keys with node
    /// capacity `k`. Sizing every shard for the full workload is
    /// deliberate: sticky affinity means a single producer thread sends
    /// everything to one shard, and the heap's backing array does not
    /// grow.
    pub fn with_capacity_for(shards: usize, sample: usize, k: usize, items: usize) -> Self {
        Self { shards, sample, queue: BgpqOptions::with_capacity_for(k, items) }
    }

    pub fn validate(&self) {
        assert!(self.shards >= 1, "need at least one shard");
        assert!(self.sample >= 1, "must sample at least one shard");
        self.queue.validate();
    }
}

impl Default for ShardedOptions {
    fn default() -> Self {
        Self { shards: 4, sample: 2, queue: BgpqOptions::default() }
    }
}

/// xorshift64*: tiny, allocation-free PRNG for shard sampling. The
/// caller owns the state (one word per worker), keeping the router
/// itself stateless across operations.
#[inline]
fn next_u64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// Per-worker routing scratch: the sampled-delete work lists (live
/// shards, hint snapshot, sampled picks). Parked in the worker's
/// [`pq_api::ScratchSlot`] between deletes, alongside the heap's own
/// arena — distinct types share the slot, so the router taking its
/// scratch never conflicts with the shard heaps taking theirs inside
/// the same operation.
#[derive(Debug, Default)]
struct RouterScratch {
    live: Vec<usize>,
    hints: Vec<u64>,
    picks: Vec<usize>,
}

/// `S` BGPQ instances behind a relaxed, sampled router.
pub struct ShardedBgpq<K: KeyType, V: ValueType, P: Platform> {
    shards: Box<[Bgpq<K, V, P>]>,
    sample: usize,
    quality: QualityStats,
    /// Per-shard quarantine flags: a shard that poisoned itself or hit
    /// a lock timeout is permanently excluded from routing, sampling
    /// and sweeps — the surviving shards absorb its traffic.
    quarantined: Box<[AtomicBool]>,
}

impl<K: KeyType, V: ValueType, P: Platform> ShardedBgpq<K, V, P> {
    /// Build from one platform instance per shard (each shard owns its
    /// lock table). `platforms.len()` must equal `opts.shards`, and
    /// each platform needs at least `opts.queue.max_nodes + 1` locks.
    pub fn with_platforms(platforms: Vec<P>, opts: ShardedOptions) -> Self {
        opts.validate();
        assert_eq!(platforms.len(), opts.shards, "one platform per shard");
        let shards: Vec<Bgpq<K, V, P>> =
            platforms.into_iter().map(|p| Bgpq::with_platform(p, opts.queue)).collect();
        let quarantined = (0..opts.shards).map(|_| AtomicBool::new(false)).collect();
        Self {
            shards: shards.into_boxed_slice(),
            sample: opts.sample.clamp(1, opts.shards),
            quality: QualityStats::new(),
            quarantined,
        }
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shards sampled per delete (after clamping to `1..=S`).
    pub fn sample(&self) -> usize {
        self.sample
    }

    /// Direct access to one shard (tests, invariant checks).
    pub fn shard(&self, i: usize) -> &Bgpq<K, V, P> {
        &self.shards[i]
    }

    /// Batch capacity `k` (identical across shards).
    pub fn node_capacity(&self) -> usize {
        self.shards[0].node_capacity()
    }

    /// Which shard an affinity token routes to.
    #[inline]
    pub fn shard_for(&self, affinity: usize) -> usize {
        affinity % self.shards.len()
    }

    /// Whether shard `i` has been taken out of rotation.
    pub fn is_quarantined(&self, i: usize) -> bool {
        self.quarantined[i].load(Ordering::Relaxed)
    }

    /// Number of shards currently quarantined.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.iter().filter(|q| q.load(Ordering::Relaxed)).count()
    }

    /// Take shard `i` out of rotation (idempotent). Called by the
    /// routing paths when a shard reports `Poisoned` or `LockTimeout`;
    /// also available to callers that detect a failure out of band.
    pub fn quarantine(&self, i: usize) {
        if !self.quarantined[i].swap(true, Ordering::SeqCst) {
            self.quality.record_quarantine();
            OpStats::bump(&self.shards[i].stats().shard_quarantines);
        }
    }

    /// Total items across *live* shards. Exact at quiescence. A
    /// quarantined shard's count is unreliable (it crashed mid-flight)
    /// and its keys are unreachable, so it is excluded.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.is_quarantined(i))
            .map(|(_, s)| s.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Relaxation counters recorded by the delete path.
    pub fn quality(&self) -> QualitySnapshot {
        self.quality.snapshot()
    }

    pub fn reset_quality(&self) {
        self.quality.reset();
    }

    /// All shards' operation counters folded into one.
    pub fn merged_stats(&self) -> OpStats {
        let total = OpStats::new();
        for s in self.shards.iter() {
            total.merge(s.stats());
        }
        total
    }

    /// Ratio of the most-loaded shard's inserted-item count to the
    /// mean (1.0 = perfectly balanced; meaningful after inserts ran).
    pub fn load_imbalance(&self) -> f64 {
        let loads: Vec<u64> =
            self.shards.iter().map(|s| s.stats().snapshot().items_inserted).collect();
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / loads.len() as f64;
        *loads.iter().max().unwrap() as f64 / mean
    }

    /// Insert a sorted-or-not batch into the shard selected by
    /// `affinity` (callers keep this sticky per worker so consecutive
    /// batches hit the same shard's partial buffer).
    ///
    /// Panics on failure; prefer [`ShardedBgpq::try_insert`] when the
    /// caller wants backpressure and fail-over as values.
    pub fn insert(&self, w: &mut P::Worker, affinity: usize, items: &[Entry<K, V>]) {
        self.try_insert(w, affinity, items)
            .unwrap_or_else(|e| panic!("sharded BGPQ insert failed: {e}"));
    }

    /// Insert with failure handling: route to the affinity shard, and
    /// if that shard is quarantined — or fails during the attempt —
    /// redistribute to the next live shard (round robin from the home
    /// shard, so a dead shard's producers spread over the survivors).
    ///
    /// `Err(Full)` is backpressure, not failure: the shard stays live
    /// (deletes make room) and no key is taken. A shard returning
    /// `Poisoned` or `LockTimeout` is quarantined and the insert moves
    /// on; only when every live shard refused does the error surface —
    /// the last `Full` if any shard was merely full, else `Poisoned`.
    pub fn try_insert(
        &self,
        w: &mut P::Worker,
        affinity: usize,
        items: &[Entry<K, V>],
    ) -> Result<(), QueueError> {
        let s = self.shards.len();
        let home = self.shard_for(affinity);
        let mut full: Option<QueueError> = None;
        for off in 0..s {
            let i = (home + off) % s;
            if self.is_quarantined(i) {
                continue;
            }
            match self.shards[i].try_insert(w, items) {
                Ok(()) => return Ok(()),
                Err(e @ QueueError::Full { .. }) => full = Some(e),
                Err(_) => self.quarantine(i),
            }
        }
        Err(full.unwrap_or(QueueError::Poisoned))
    }

    /// Relaxed delete-min: sample `c` shards through `rng`, take up to
    /// `count` entries from the best-hinted one, steal from the other
    /// sampled shards on a miss, and finish with an exact sweep of all
    /// shards before returning 0. Appended entries are ascending (they
    /// come from a single shard's delete).
    pub fn delete_min(
        &self,
        w: &mut P::Worker,
        rng: &mut u64,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
    ) -> usize {
        self.try_delete_min(w, rng, out, count)
            .unwrap_or_else(|e| panic!("sharded BGPQ delete_min failed: {e}"))
    }

    /// Relaxed delete-min with failure handling: quarantined shards are
    /// excluded from sampling, stealing and the exact sweep; a shard
    /// that fails mid-attempt is quarantined and the delete continues
    /// on the survivors. `Ok(0)` means every *live* shard was observed
    /// empty (exact at quiescence); `Err(Poisoned)` means no live shard
    /// remains.
    pub fn try_delete_min(
        &self,
        w: &mut P::Worker,
        rng: &mut u64,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
    ) -> Result<usize, QueueError> {
        // Take the routing scratch out of the worker's slot for the
        // whole delete (the shards' own arenas are a different type in
        // the same slot). A panicking shard op drops it; the next
        // delete just rebuilds.
        let mut rs = self.scratch_slot(w).take::<RouterScratch>().unwrap_or_default();
        let r = self.try_delete_min_with(w, rng, out, count, &mut rs);
        self.scratch_slot(w).put(rs);
        r
    }

    /// The worker's scratch parking spot, reached through any shard's
    /// platform (slot storage lives on the worker, not the platform).
    #[inline]
    fn scratch_slot<'a>(&self, w: &'a mut P::Worker) -> &'a mut pq_api::ScratchSlot {
        self.shards[0].platform().scratch_slot(w)
    }

    fn try_delete_min_with(
        &self,
        w: &mut P::Worker,
        rng: &mut u64,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
        rs: &mut RouterScratch,
    ) -> Result<usize, QueueError> {
        let s = self.shards.len();
        let start = out.len();
        let RouterScratch { live, hints, picks } = rs;
        live.clear();
        live.extend((0..s).filter(|&i| !self.is_quarantined(i)));
        if live.is_empty() {
            return Err(QueueError::Poisoned);
        }

        if live.len() == 1 {
            let i = live[0];
            return match self.shards[i].try_delete_min(w, out, count) {
                Ok(got) => {
                    if got > 0 {
                        self.quality.record_delete(&[], 0, out[start].key.to_ordered_bits(), false);
                    }
                    Ok(got)
                }
                Err(_) => {
                    self.quarantine(i);
                    Err(QueueError::Poisoned)
                }
            };
        }

        // Lock-free routing snapshot: every shard's published root-min
        // (a poisoned shard parks its hint at `u64::MAX`, but we route
        // over the live list regardless).
        hints.clear();
        hints.extend(self.shards.iter().map(|q| q.min_hint_bits()));

        let c = self.sample.min(live.len());
        picks.clear();
        if c >= live.len() {
            picks.extend(live.iter().copied());
        } else {
            while picks.len() < c {
                let i = live[(next_u64(rng) % live.len() as u64) as usize];
                if !picks.contains(&i) {
                    picks.push(i);
                }
            }
        }
        picks.sort_unstable_by_key(|&i| hints[i]);

        let mut clean_miss = false;
        for (attempt, &i) in picks.iter().enumerate() {
            match self.shards[i].try_delete_min(w, out, count) {
                Ok(0) => clean_miss = true,
                Ok(got) => {
                    self.quality.record_delete(
                        hints,
                        i,
                        out[start].key.to_ordered_bits(),
                        attempt > 0,
                    );
                    return Ok(got);
                }
                Err(_) => self.quarantine(i),
            }
        }

        // Exact fallback: a hint of `u64::MAX` means "empty or never
        // published", so sampled misses do not prove emptiness. Attempt
        // a real delete on every live shard; only a full sweep of
        // misses reports 0, which at quiescence is precise.
        self.quality.record_full_sweep();
        for &i in live.iter() {
            if self.is_quarantined(i) {
                continue;
            }
            match self.shards[i].try_delete_min(w, out, count) {
                Ok(0) => clean_miss = true,
                Ok(got) => {
                    self.quality.record_delete(hints, i, out[start].key.to_ordered_bits(), true);
                    return Ok(got);
                }
                Err(_) => self.quarantine(i),
            }
        }
        if clean_miss {
            Ok(0)
        } else {
            Err(QueueError::Poisoned)
        }
    }

    /// Remove every item from live shards (shard by shard; the
    /// concatenation is sorted per shard, not globally). Returns the
    /// number drained. Quarantined shards are skipped — their contents
    /// are unreachable by design.
    pub fn drain(&self, w: &mut P::Worker, out: &mut Vec<Entry<K, V>>) -> usize {
        self.shards
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.is_quarantined(i))
            .map(|(_, s)| s.drain(w, out))
            .sum()
    }

    /// Discard every item in live shards. Returns the number discarded.
    pub fn clear(&self, w: &mut P::Worker) -> usize {
        self.shards
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.is_quarantined(i))
            .map(|(_, s)| s.clear(w))
            .sum()
    }

    /// Check every live shard's heap invariants (quiescent callers
    /// only). Returns the total item count. Quarantined shards are
    /// skipped: a crashed shard's invariants are void (that is why it
    /// was quarantined).
    pub fn check_invariants(&self) -> usize {
        self.shards
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.is_quarantined(i))
            .map(|(_, s)| s.check_invariants())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_runtime::{CpuPlatform, CpuWorker};

    fn sharded(s: usize, c: usize, k: usize) -> ShardedBgpq<u32, u32, CpuPlatform> {
        let queue = BgpqOptions { node_capacity: k, max_nodes: 256, ..Default::default() };
        let platforms = (0..s).map(|_| CpuPlatform::new(queue.max_nodes + 1)).collect();
        ShardedBgpq::with_platforms(platforms, ShardedOptions::new(s, c, queue))
    }

    #[test]
    fn routes_inserts_by_affinity() {
        let q = sharded(4, 2, 8);
        let mut w = CpuWorker::new();
        for a in 0..8usize {
            q.insert(&mut w, a, &[Entry::new(a as u32, 0)]);
        }
        // affinity a and a+4 land on the same shard.
        for i in 0..4 {
            assert_eq!(q.shard(i).len(), 2, "shard {i}");
        }
        assert_eq!(q.len(), 8);
    }

    #[test]
    fn drains_exactly_across_shards() {
        let q = sharded(3, 1, 4);
        let mut w = CpuWorker::new();
        let mut rng = 7u64;
        for i in 0..60u32 {
            q.insert(&mut w, (i % 3) as usize, &[Entry::new(i, i)]);
        }
        let mut out = Vec::new();
        let mut got = 0;
        loop {
            let n = q.delete_min(&mut w, &mut rng, &mut out, 4);
            if n == 0 {
                break;
            }
            got += n;
        }
        assert_eq!(got, 60, "exact sweep must drain every shard");
        assert!(q.is_empty());
        let mut keys: Vec<u32> = out.iter().map(|e| e.key).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..60).collect::<Vec<_>>());
        assert_eq!(q.check_invariants(), 0);
    }

    #[test]
    fn single_shard_is_strict() {
        let q = sharded(1, 1, 4);
        let mut w = CpuWorker::new();
        let mut rng = 3u64;
        q.insert(&mut w, 0, &[Entry::new(9u32, 0), Entry::new(2, 0), Entry::new(5, 0)]);
        let mut out = Vec::new();
        assert_eq!(q.delete_min(&mut w, &mut rng, &mut out, 4), 3);
        assert_eq!(out.iter().map(|e| e.key).collect::<Vec<_>>(), vec![2, 5, 9]);
        assert_eq!(q.quality().rank_error_sum, 0);
    }

    #[test]
    fn sampled_delete_prefers_best_hint() {
        let q = sharded(2, 2, 4);
        let mut w = CpuWorker::new();
        let mut rng = 1u64;
        q.insert(&mut w, 0, &[Entry::new(100u32, 0)]);
        q.insert(&mut w, 1, &[Entry::new(5u32, 0)]);
        let mut out = Vec::new();
        // c == S: both hints visible, must take the smaller minimum.
        assert_eq!(q.delete_min(&mut w, &mut rng, &mut out, 1), 1);
        assert_eq!(out[0].key, 5);
        assert_eq!(q.quality().rank_error_sum, 0, "c = S never skips a smaller shard");
    }

    #[test]
    fn quarantined_shard_is_bypassed_for_inserts_and_deletes() {
        use bgpq_runtime::{CpuPlatform, FaultAction, FaultPlan, InjectionPoint};
        use std::sync::Arc;

        // Shard 0 gets a fault plan that panics its first insert
        // heapify; the other shards are healthy.
        let queue = BgpqOptions { node_capacity: 2, max_nodes: 64, ..Default::default() };
        let plan = Arc::new(FaultPlan::new().with_rule(
            InjectionPoint::MidInsertHeapify,
            1,
            FaultAction::Panic,
        ));
        let platforms: Vec<CpuPlatform> = (0..3)
            .map(|i| {
                let p = CpuPlatform::new(queue.max_nodes + 1);
                if i == 0 {
                    p.with_faults(plan.clone())
                } else {
                    p
                }
            })
            .collect();
        let q: ShardedBgpq<u32, u32, CpuPlatform> =
            ShardedBgpq::with_platforms(platforms, ShardedOptions::new(3, 2, queue));
        let mut w = CpuWorker::new();

        // Crash shard 0 directly (the router only sees the poisoned
        // state afterwards, as it would from another thread's crash).
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for i in 0..32u32 {
                q.shard(0).insert(&mut w, &[Entry::new(i, 0), Entry::new(i + 100, 0)]);
            }
        }));
        assert!(r.is_err(), "injected panic must fire");
        assert!(q.shard(0).is_poisoned());

        // Affinity 0 points at the dead shard; try_insert must
        // redistribute, quarantine it, and succeed on a survivor.
        q.try_insert(&mut w, 0, &[Entry::new(7u32, 7)]).expect("redistributed insert");
        assert!(q.is_quarantined(0));
        assert_eq!(q.quarantined_count(), 1);
        assert_eq!(q.quality().quarantines, 1);
        assert_eq!(q.shard(0).stats().snapshot().shard_quarantines, 1);
        assert_eq!(q.len(), 1, "len counts only live shards");

        // Deletes skip the quarantined shard and drain the survivors.
        let mut rng = 5u64;
        let mut out = Vec::new();
        assert_eq!(q.try_delete_min(&mut w, &mut rng, &mut out, 2).unwrap(), 1);
        assert_eq!(out[0].key, 7);
        assert_eq!(q.try_delete_min(&mut w, &mut rng, &mut out, 2).unwrap(), 0);
        assert_eq!(q.check_invariants(), 0, "invariant sweep skips the quarantined shard");
    }

    #[test]
    fn all_shards_quarantined_reports_poisoned() {
        let q = sharded(2, 1, 4);
        let mut w = CpuWorker::new();
        q.quarantine(0);
        q.quarantine(1);
        q.quarantine(1); // idempotent
        assert_eq!(q.quarantined_count(), 2);
        assert_eq!(q.quality().quarantines, 2);
        assert!(matches!(
            q.try_insert(&mut w, 0, &[Entry::new(1u32, 1)]),
            Err(QueueError::Poisoned)
        ));
        let mut rng = 9u64;
        let mut out = Vec::new();
        assert!(matches!(
            q.try_delete_min(&mut w, &mut rng, &mut out, 1),
            Err(QueueError::Poisoned)
        ));
        assert!(out.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn full_shard_is_backpressure_not_quarantine() {
        // One tiny shard: filling it must yield Full, leave it live,
        // and deleting makes room again.
        let queue = BgpqOptions { node_capacity: 2, max_nodes: 2, ..Default::default() };
        let platforms = vec![CpuPlatform::new(queue.max_nodes + 1)];
        let q: ShardedBgpq<u32, u32, CpuPlatform> =
            ShardedBgpq::with_platforms(platforms, ShardedOptions::new(1, 1, queue));
        let mut w = CpuWorker::new();
        while q.try_insert(&mut w, 0, &[Entry::new(1, 0), Entry::new(2, 0)]).is_ok() {}
        assert!(matches!(
            q.try_insert(&mut w, 0, &[Entry::new(3, 0), Entry::new(4, 0)]),
            Err(QueueError::Full { .. })
        ));
        assert_eq!(q.quarantined_count(), 0, "Full must not quarantine");
        let mut rng = 3u64;
        let mut out = Vec::new();
        q.try_delete_min(&mut w, &mut rng, &mut out, 2).unwrap();
        q.try_insert(&mut w, 0, &[Entry::new(3, 0), Entry::new(4, 0)])
            .expect("room freed by delete");
    }

    #[test]
    fn merged_stats_fold_all_shards() {
        let q = sharded(4, 2, 8);
        let mut w = CpuWorker::new();
        for a in 0..4usize {
            q.insert(&mut w, a, &[Entry::new(1u32, 0), Entry::new(2, 0)]);
        }
        let total = q.merged_stats().snapshot();
        assert_eq!(total.inserts, 4);
        assert_eq!(total.items_inserted, 8);
        assert!((q.load_imbalance() - 1.0).abs() < 1e-12, "even affinity = balanced");
    }
}
