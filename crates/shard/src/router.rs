//! The sharded router: `S` independent BGPQ instances behind a
//! MultiQueue-style front.
//!
//! * **Inserts** route whole batches to one shard chosen by the
//!   caller's sticky affinity, so each shard still sees the sorted,
//!   batch-at-a-time traffic its partial buffer and root cache are
//!   built for (§3.2/§4.3 of the paper apply per shard unchanged).
//! * **Deletes** sample `c` of `S` shards, compare their cached
//!   root-min hints ([`Bgpq::min_hint_bits`]) without taking any locks,
//!   and take a batch from the best. If the best raced empty the
//!   remaining sampled shards are tried in hint order (work stealing);
//!   if all sampled shards miss, an exact sweep attempts a real delete
//!   on *every* shard before reporting emptiness — so quiescent
//!   emptiness and full drains remain precise even though ordering
//!   between shards is relaxed.
//!
//! The router is generic over [`Platform`]: the same code runs on
//! `CpuPlatform` (real threads; see [`crate::cpu`]) and on the gpu-sim
//! scheduler, where each shard models a queue private to one GPU / SM
//! partition.
//!
//! ## Failure handling: circuit breaker per shard
//!
//! A shard that fails (poisoned heap, lock timeout) trips its breaker
//! **Open**: it is excluded from routing, sampling and sweeps, and the
//! survivors absorb its traffic. Without recovery configured that is
//! permanent — the original fail-stop behaviour. With
//! [`ShardedOptions::recovery`] set (and a salvager installed, see
//! [`ShardedBgpq::with_platforms_recovering`]), the breaker follows the
//! classic state machine:
//!
//! * **Open** — after an exponential, jittered backoff (measured in
//!   router operations, so it is deterministic per schedule and needs
//!   no clock), the next operation to notice the expired deadline
//!   probes the shard: it waits for in-flight operations to drain,
//!   salvages the crashed heap through the installed salvager
//!   (`bgpq-recover` on the CPU platform), and rebuilds it from its own
//!   recovered keys (spilling to survivors if the home shard refuses).
//! * **Half-open** — the rebuilt shard serves trial traffic. Each
//!   successful operation burns one trial token; a failure re-opens the
//!   breaker with a doubled backoff.
//! * **Closed** — trial traffic succeeded; the shard is fully
//!   re-admitted.
//!
//! Key accounting is conservative and loud: every key a salvage could
//! not recover is counted in [`QualitySnapshot::keys_lost`] — loss is
//! never silent.
//!
//! ## Buffered mode: sticky batching
//!
//! With [`ShardedOptions::buffer`] set, the router adds a *buffered*
//! operating mode in the style of "Engineering MultiQueues" (Williams &
//! Sanders): each worker hashes to a buffer slot holding
//!
//! * an **insertion buffer** — up to `B` staged inserts, flushed to the
//!   home shard as `k`-wide batches when full, on demand
//!   ([`ShardedBgpq::flush_slot`]), or on quiesce;
//! * a **deletion buffer** — restocked by one `k`-wide (or wider, see
//!   [`pq_api::BufferPolicy::refill_width`]) sampled delete-min and then
//!   served locally with no shared-memory traffic at all;
//! * a **sticky shard** — the shard picked by the last fresh `c`-of-`S`
//!   sample serves up to `σ` consecutive refills before the front
//!   re-samples, trading bounded extra rank error for `σ×` fewer hint
//!   scans and sampled probes.
//!
//! Buffered keys stay *owned by the router*: [`ShardedBgpq::len`] counts
//! them, exact-emptiness deletes drain the caller's own stage and then
//! harvest every other reachable slot before reporting `Ok(0)`, and
//! [`ShardedBgpq::drain`] empties every slot. A flush whose home shard
//! was quarantined re-routes through the ordinary redistribution path
//! and the re-routed keys are counted in
//! [`QualitySnapshot::buffer_reroutes`] — buffered inserts are never
//! silently dropped by a breaker trip.
//!
//! **Rank-error bound (quiescent, exact hints).** An unbuffered sampled
//! delete skips at most `S − c` shards. Buffered pops add two windows:
//! a pop served from position `j > 1` of a refill batch can additionally
//! be beaten by any shard whose minimum arrived after the refill was
//! sampled, and a sticky refill skips the sample entirely — so a single
//! buffered pop's shard-level rank error is bounded by `S − 1` (every
//! shard except the serving one; the serving shard's remaining keys are
//! all ≥ the buffered batch by construction). `B` and `σ` control how
//! *often* the worst case can occur, not its magnitude: between two
//! fresh samples at most `σ · max(refill_width, k)` pops are served from
//! sticky or buffered state.

use crate::buffer::WorkerBuffers;
use crate::quality::{QualitySnapshot, QualityStats};
#[cfg(any(test, feature = "mutations"))]
use bgpq::Mutation;
use bgpq::{Bgpq, BgpqOptions};
use bgpq_recover::SalvageReport;
use bgpq_runtime::Platform;
use pq_api::{BufferPolicy, Entry, KeyType, OpStats, QueueError, ValueType};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, TryLockError};

/// Configuration of a [`ShardedBgpq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedOptions {
    /// Number of independent BGPQ shards `S`.
    pub shards: usize,
    /// Shards sampled per delete `c` (clamped to `1..=S`). `c = S`
    /// degenerates to always taking the globally best hint.
    pub sample: usize,
    /// Per-shard heap configuration. Every shard is built with the same
    /// options; note the heap preallocates `max_nodes * node_capacity`
    /// entries per shard, so total memory scales with `S`.
    pub queue: BgpqOptions,
    /// Circuit-breaker recovery for crashed shards. `None` (the
    /// default) keeps quarantine permanent; `Some` enables salvage,
    /// rebuild and re-admission — provided the front also installs a
    /// salvager (the CPU front does automatically; see
    /// [`ShardedBgpq::with_platforms_recovering`]).
    pub recovery: Option<RecoveryOptions>,
    /// Buffered operating mode (per-worker insert/delete buffers with
    /// sticky shard selection — see the module docs). `None` (the
    /// default) keeps the original unbuffered front; the buffered entry
    /// points panic on misuse when buffering is off.
    pub buffer: Option<BufferPolicy>,
    /// Number of per-worker buffer slots when `buffer` is set (workers
    /// hash to `worker % buffer_slots`; more slots mean less slot
    /// sharing, at a few empty `Vec`s of memory each).
    pub buffer_slots: usize,
}

/// Default number of buffer slots in buffered mode.
pub const DEFAULT_BUFFER_SLOTS: usize = 64;

impl ShardedOptions {
    pub fn new(shards: usize, sample: usize, queue: BgpqOptions) -> Self {
        Self {
            shards,
            sample,
            queue,
            recovery: None,
            buffer: None,
            buffer_slots: DEFAULT_BUFFER_SLOTS,
        }
    }

    /// Enable circuit-breaker recovery with the given policy.
    pub fn with_recovery(mut self, recovery: RecoveryOptions) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Enable the buffered operating mode with the given policy.
    pub fn with_buffering(mut self, buffer: BufferPolicy) -> Self {
        self.buffer = Some(buffer);
        self
    }

    /// Override the number of buffer slots (buffered mode only).
    pub fn with_buffer_slots(mut self, slots: usize) -> Self {
        self.buffer_slots = slots;
        self
    }

    /// Options where *each shard* can hold `items` keys with node
    /// capacity `k`. Sizing every shard for the full workload is
    /// deliberate: sticky affinity means a single producer thread sends
    /// everything to one shard, and the heap's backing array does not
    /// grow.
    pub fn with_capacity_for(shards: usize, sample: usize, k: usize, items: usize) -> Self {
        Self::new(shards, sample, BgpqOptions::with_capacity_for(k, items))
    }

    pub fn validate(&self) {
        assert!(self.shards >= 1, "need at least one shard");
        assert!(self.sample >= 1, "must sample at least one shard");
        if let Some(b) = &self.buffer {
            b.validate();
            assert!(self.buffer_slots >= 1, "buffered mode needs at least one buffer slot");
        }
        self.queue.validate();
    }
}

impl Default for ShardedOptions {
    fn default() -> Self {
        Self::new(4, 2, BgpqOptions::default())
    }
}

/// Circuit-breaker policy for shard recovery. All deadlines are in
/// *router operations* (one tick per `try_insert` / `try_delete_min`),
/// not wall time: deterministic per schedule, meaningful on both the
/// thread and the gpu-sim platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryOptions {
    /// Router operations to wait before the first salvage probe of a
    /// freshly opened breaker. Doubled on each re-open (pre-jitter).
    pub base_backoff_ops: u64,
    /// Cap on the backoff growth (pre-jitter).
    pub max_backoff_ops: u64,
    /// Successful shard operations required in half-open before the
    /// breaker closes and the shard counts as re-admitted.
    pub trial_ops: u64,
    /// Salvage attempts per shard before its quarantine becomes
    /// permanent after all (a shard that keeps crashing is hardware,
    /// not luck). `0` means unlimited.
    pub max_generations: u32,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        Self { base_backoff_ops: 64, max_backoff_ops: 4096, trial_ops: 8, max_generations: 8 }
    }
}

/// Observable state of one shard's circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Serving normally.
    Closed,
    /// Quarantined: excluded from routing until a salvage probe (or
    /// forever, when recovery is off or generations are exhausted).
    Open,
    /// Salvaged and rebuilt; serving trial traffic.
    HalfOpen,
}

const CLOSED: u8 = 0;
const OPEN: u8 = 1;
const HALF_OPEN: u8 = 2;

/// How long a salvage probe spins waiting for a quarantined shard's
/// straggler operations to drain before giving up and rescheduling.
const QUIESCE_SPINS: u32 = 100_000;

/// Per-shard breaker: state machine plus the bookkeeping recovery
/// needs (probe deadline, attempt generation, trial budget, and an
/// in-flight count so salvage can wait out stragglers that passed the
/// quarantine check before the breaker opened).
#[derive(Debug)]
struct Breaker {
    state: AtomicU8,
    /// Salvage attempts so far; doubles the backoff and feeds jitter.
    generation: AtomicU32,
    /// Global op-count after which the next probe may run (Open only).
    probe_at: AtomicU64,
    /// Successful trial operations still required to close (HalfOpen).
    trial_left: AtomicU64,
    /// Probe mutual exclusion: only one operation salvages at a time.
    recovering: AtomicBool,
    /// Operations currently inside this shard's heap.
    inflight: AtomicU64,
}

impl Breaker {
    fn new() -> Self {
        Self {
            state: AtomicU8::new(CLOSED),
            generation: AtomicU32::new(0),
            probe_at: AtomicU64::new(0),
            trial_left: AtomicU64::new(0),
            recovering: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
        }
    }
}

/// Decrement-on-drop in-flight token. Drop runs during unwind too, so
/// an operation killed inside a shard (an injected panic, say) still
/// releases its token and cannot wedge later salvage quiescence.
struct InflightGuard<'a>(&'a AtomicU64);

impl<'a> InflightGuard<'a> {
    fn enter(counter: &'a AtomicU64) -> Self {
        counter.fetch_add(1, Ordering::AcqRel);
        Self(counter)
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Platform capability hook: salvage one crashed heap (reset abandoned
/// locks, walk settled keys into the vec, reset to empty) and report
/// the accounting. On the CPU platform this is
/// [`bgpq_recover::salvage_heap`]; platforms without a safe
/// force-unlock simply install none and keep permanent quarantine.
pub type Salvager<K, V, P> =
    fn(&Bgpq<K, V, P>, &mut <P as Platform>::Worker, &mut Vec<Entry<K, V>>) -> SalvageReport;

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Backoff before generation `gen`'s probe of shard `shard`:
/// exponential (`base << gen`, capped) with deterministic jitter in
/// `[raw/2, 3*raw/2)` drawn from the (shard, generation) pair — shards
/// opened by one fault burst do not probe in lockstep.
fn backoff_ops(rec: &RecoveryOptions, shard: usize, gen: u32) -> u64 {
    let raw =
        rec.base_backoff_ops.saturating_mul(1u64 << gen.min(20)).min(rec.max_backoff_ops).max(1);
    let r = splitmix64(((shard as u64) << 32) | u64::from(gen).wrapping_add(1));
    raw / 2 + r % raw
}

/// xorshift64*: tiny, allocation-free PRNG for shard sampling. The
/// caller owns the state (one word per worker), keeping the router
/// itself stateless across operations.
#[inline]
fn next_u64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// Per-worker routing scratch: the sampled-delete work lists (live
/// shards, hint snapshot, sampled picks). Parked in the worker's
/// [`pq_api::ScratchSlot`] between deletes, alongside the heap's own
/// arena — distinct types share the slot, so the router taking its
/// scratch never conflicts with the shard heaps taking theirs inside
/// the same operation.
#[derive(Debug, Default)]
struct RouterScratch {
    live: Vec<usize>,
    hints: Vec<u64>,
    picks: Vec<usize>,
}

/// `S` BGPQ instances behind a relaxed, sampled router.
pub struct ShardedBgpq<K: KeyType, V: ValueType, P: Platform> {
    shards: Box<[Bgpq<K, V, P>]>,
    sample: usize,
    quality: QualityStats,
    /// Per-shard circuit breakers: a shard that poisoned itself or hit
    /// a lock timeout opens its breaker and is excluded from routing,
    /// sampling and sweeps — the surviving shards absorb its traffic.
    /// With `recovery` + `salvager` set, open breakers are probed,
    /// salvaged and re-admitted; otherwise quarantine is permanent.
    breakers: Box<[Breaker]>,
    /// Recovery policy; `None` keeps quarantine permanent.
    recovery: Option<RecoveryOptions>,
    /// Platform salvage capability; `None` keeps quarantine permanent.
    salvager: Option<Salvager<K, V, P>>,
    /// Router operation counter: the clock that backoff deadlines are
    /// measured against. Ticks only when recovery is configured.
    ops: AtomicU64,
    /// Number of breakers currently Open (fast path guard: zero means
    /// the per-op recovery scan is skipped entirely).
    open_shards: AtomicU64,
    /// Buffered-mode policy; `None` leaves `buffers` empty and the
    /// buffered entry points panicking on misuse.
    buffer_policy: Option<BufferPolicy>,
    /// Per-worker buffer slots (empty when unbuffered). Slot owners
    /// lock blocking; foreign access (harvest, drain) is `try_lock`
    /// only and never calls into a platform or shard while holding a
    /// foreign slot — see `crate::buffer` for the lock discipline.
    buffers: Box<[Mutex<WorkerBuffers<K, V>>]>,
    /// Keys currently parked across all buffer slots ([`Self::len`]
    /// counts them; updated only after a successful buffer mutation, so
    /// a panicking shard op cannot strand the count).
    buffered_keys: AtomicU64,
    /// Front-level counters for the buffered mode (flushes, refills,
    /// stickiness; shard-level traffic keeps landing in the per-shard
    /// [`OpStats`] as before).
    front_stats: OpStats,
    /// Verification self-test mutation (see [`bgpq::Mutation`]), copied
    /// from the per-shard queue options so router-level mutations
    /// ([`bgpq::Mutation::SweepDiscardsOnTrip`]) are honored at this
    /// layer. Compiled out of production builds.
    #[cfg(any(test, feature = "mutations"))]
    mutation: Mutation,
}

impl<K: KeyType, V: ValueType, P: Platform> ShardedBgpq<K, V, P> {
    /// Build from one platform instance per shard (each shard owns its
    /// lock table). `platforms.len()` must equal `opts.shards`, and
    /// each platform needs at least `opts.queue.max_nodes + 1` locks.
    ///
    /// No salvager is installed, so even with [`ShardedOptions::recovery`]
    /// set quarantine stays permanent; use
    /// [`ShardedBgpq::with_platforms_recovering`] (or the CPU front,
    /// which wires it up automatically) for self-healing.
    pub fn with_platforms(platforms: Vec<P>, opts: ShardedOptions) -> Self {
        Self::build(platforms, opts, None)
    }

    /// [`ShardedBgpq::with_platforms`] plus a platform salvage hook:
    /// when `opts.recovery` is set, opened breakers are probed after
    /// backoff, crashed shards salvaged through `salvager`, rebuilt
    /// from their own recovered keys, and re-admitted via half-open
    /// trial traffic.
    pub fn with_platforms_recovering(
        platforms: Vec<P>,
        opts: ShardedOptions,
        salvager: Salvager<K, V, P>,
    ) -> Self {
        Self::build(platforms, opts, Some(salvager))
    }

    fn build(platforms: Vec<P>, opts: ShardedOptions, salvager: Option<Salvager<K, V, P>>) -> Self {
        opts.validate();
        assert_eq!(platforms.len(), opts.shards, "one platform per shard");
        let shards: Vec<Bgpq<K, V, P>> =
            platforms.into_iter().map(|p| Bgpq::with_platform(p, opts.queue)).collect();
        let breakers = (0..opts.shards).map(|_| Breaker::new()).collect();
        let slots = if opts.buffer.is_some() { opts.buffer_slots } else { 0 };
        let buffers = (0..slots).map(|_| Mutex::new(WorkerBuffers::default())).collect();
        Self {
            shards: shards.into_boxed_slice(),
            sample: opts.sample.clamp(1, opts.shards),
            quality: QualityStats::new(),
            breakers,
            recovery: opts.recovery,
            salvager,
            ops: AtomicU64::new(0),
            open_shards: AtomicU64::new(0),
            buffer_policy: opts.buffer,
            buffers,
            buffered_keys: AtomicU64::new(0),
            front_stats: OpStats::new(),
            #[cfg(any(test, feature = "mutations"))]
            mutation: opts.queue.mutation,
        }
    }

    /// Access-tag the front's shared coordination state (breaker
    /// states, in-flight tokens, the recovery op clock) for schedule
    /// exploration: maps to [`Platform::touch_shared`], a no-op outside
    /// the simulator. Reads conflict only with breaker transitions, so
    /// fault-free schedules keep their cross-shard independence.
    #[inline]
    fn touch_front(&self, w: &mut P::Worker, write: bool) {
        self.shards[0].platform().touch_shared(w, write);
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shards sampled per delete (after clamping to `1..=S`).
    pub fn sample(&self) -> usize {
        self.sample
    }

    /// Direct access to one shard (tests, invariant checks).
    pub fn shard(&self, i: usize) -> &Bgpq<K, V, P> {
        &self.shards[i]
    }

    /// Batch capacity `k` (identical across shards).
    pub fn node_capacity(&self) -> usize {
        self.shards[0].node_capacity()
    }

    /// Which shard an affinity token routes to.
    #[inline]
    pub fn shard_for(&self, affinity: usize) -> usize {
        affinity % self.shards.len()
    }

    /// Whether shard `i` has been taken out of rotation (breaker Open).
    /// Half-open shards are *live*: they serve trial traffic.
    pub fn is_quarantined(&self, i: usize) -> bool {
        self.breakers[i].state.load(Ordering::Relaxed) == OPEN
    }

    /// Number of shards currently quarantined.
    pub fn quarantined_count(&self) -> usize {
        self.breakers.iter().filter(|b| b.state.load(Ordering::Relaxed) == OPEN).count()
    }

    /// Observable breaker state of shard `i`.
    pub fn breaker_state(&self, i: usize) -> BreakerState {
        match self.breakers[i].state.load(Ordering::Relaxed) {
            OPEN => BreakerState::Open,
            HALF_OPEN => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// Take shard `i` out of rotation (idempotent while Open). Called
    /// by the routing paths when a shard reports `Poisoned` or
    /// `LockTimeout`; also available to callers that detect a failure
    /// out of band. With recovery configured this schedules a salvage
    /// probe after an exponential, jittered backoff; each re-open
    /// doubles the wait.
    pub fn quarantine(&self, i: usize) {
        let b = &self.breakers[i];
        let prev = b.state.swap(OPEN, Ordering::SeqCst);
        if prev == OPEN {
            return;
        }
        self.open_shards.fetch_add(1, Ordering::Relaxed);
        self.quality.record_quarantine();
        OpStats::bump(&self.shards[i].stats().shard_quarantines);
        if let Some(rec) = &self.recovery {
            let gen = b.generation.fetch_add(1, Ordering::Relaxed);
            let now = self.ops.load(Ordering::Relaxed);
            b.probe_at.store(now.saturating_add(backoff_ops(rec, i, gen)), Ordering::Relaxed);
        }
    }

    /// Advance the recovery clock and run due salvage probes. Called at
    /// the top of every routing operation; free when recovery is off,
    /// one relaxed increment plus one load when no breaker is open.
    fn tick(&self, w: &mut P::Worker) {
        let (Some(rec), Some(salvager)) = (self.recovery, self.salvager) else {
            return;
        };
        // The op clock is written by every operation: with recovery
        // armed, front traffic is genuinely order-sensitive (which op
        // crosses a probe deadline first matters).
        self.touch_front(w, true);
        let now = self.ops.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
        if self.open_shards.load(Ordering::Relaxed) == 0 {
            return;
        }
        for i in 0..self.shards.len() {
            let b = &self.breakers[i];
            if b.state.load(Ordering::Acquire) != OPEN
                || now < b.probe_at.load(Ordering::Relaxed)
                || (rec.max_generations != 0
                    && b.generation.load(Ordering::Relaxed) > rec.max_generations)
            {
                continue;
            }
            if b.recovering.swap(true, Ordering::Acquire) {
                continue; // another operation is already probing
            }
            if b.state.load(Ordering::Acquire) == OPEN {
                self.probe_shard(i, w, salvager, &rec, now);
            }
            b.recovering.store(false, Ordering::Release);
        }
    }

    /// One salvage probe: wait for stragglers, salvage, rebuild, and
    /// move the shard to half-open. Runs under the breaker's
    /// `recovering` lock with the breaker Open, so no routing path can
    /// enter the shard concurrently.
    fn probe_shard(
        &self,
        i: usize,
        w: &mut P::Worker,
        salvager: Salvager<K, V, P>,
        rec: &RecoveryOptions,
        now: u64,
    ) {
        self.quality.record_probe();
        // The whole probe mutates front state (quiesce reads, breaker
        // transition to half-open); the salvage itself tags the shard's
        // own lock domain through the salvager.
        self.touch_front(w, true);
        let b = &self.breakers[i];

        // Quiescence: operations that passed the quarantine check just
        // before the breaker opened may still be inside (or unwinding
        // out of) the shard. Their in-flight tokens release even on
        // panic; wait them out, bounded — a wedged straggler (its
        // watchdog has not fired yet) just postpones this probe.
        let mut spins = 0u32;
        while b.inflight.load(Ordering::Acquire) != 0 {
            spins += 1;
            if spins > QUIESCE_SPINS {
                b.probe_at
                    .store(now.saturating_add(rec.base_backoff_ops.max(1)), Ordering::Relaxed);
                return;
            }
            std::hint::spin_loop();
        }

        let mut recovered: Vec<Entry<K, V>> = Vec::new();
        let report = salvager(&self.shards[i], w, &mut recovered);
        self.quality.record_salvage(report.keys_recovered as u64, report.keys_lost as u64);

        // Rebuild the shard from its own keys; spill chunks the freshly
        // reset home shard refuses (it re-poisoned, or raced Full) to
        // the survivors, and count anything nobody accepted as lost —
        // loudly, never silently.
        let k = self.shards[i].node_capacity();
        let mut residue = 0u64;
        for chunk in recovered.chunks(k) {
            if self.shards[i].try_insert(w, chunk).is_ok() {
                continue;
            }
            if !self.spill(w, i, chunk) {
                residue += chunk.len() as u64;
            }
        }
        if residue > 0 {
            self.quality.record_lost(residue);
        }

        // Trial service: live again, but each success burns a token and
        // any failure re-opens with a doubled backoff.
        b.trial_left.store(rec.trial_ops.max(1), Ordering::Relaxed);
        b.state.store(HALF_OPEN, Ordering::Release);
        self.open_shards.fetch_sub(1, Ordering::Relaxed);
    }

    /// Offer `chunk` to any live shard other than `from`. Returns
    /// whether someone took it.
    fn spill(&self, w: &mut P::Worker, from: usize, chunk: &[Entry<K, V>]) -> bool {
        let s = self.shards.len();
        for off in 1..s {
            let i = (from + off) % s;
            if self.is_quarantined(i) {
                continue;
            }
            if self.shards[i].try_insert(w, chunk).is_ok() {
                return true;
            }
        }
        false
    }

    /// Note a successful operation against shard `i`: in half-open it
    /// burns one trial token, and the token that reaches zero closes
    /// the breaker (full re-admission).
    #[inline]
    fn note_success(&self, i: usize) {
        let b = &self.breakers[i];
        if b.state.load(Ordering::Relaxed) != HALF_OPEN {
            return;
        }
        if b.trial_left.fetch_sub(1, Ordering::AcqRel) == 1
            && b.state
                .compare_exchange(HALF_OPEN, CLOSED, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            self.quality.record_readmission();
        }
    }

    /// Total items across *live* shards plus keys parked in buffer
    /// slots (buffered mode). Exact at quiescence. A quarantined
    /// shard's count is unreliable (it crashed mid-flight) and its keys
    /// are unreachable, so it is excluded.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.is_quarantined(i))
            .map(|(_, s)| s.len())
            .sum::<usize>()
            + self.buffered_len()
    }

    /// Keys currently parked in worker buffers (0 when unbuffered).
    pub fn buffered_len(&self) -> usize {
        self.buffered_keys.load(Ordering::Relaxed) as usize
    }

    /// Whether the buffered operating mode is on.
    pub fn buffered(&self) -> bool {
        self.buffer_policy.is_some()
    }

    /// Number of per-worker buffer slots (0 when unbuffered).
    pub fn buffer_slots(&self) -> usize {
        self.buffers.len()
    }

    /// Front-level counters for the buffered mode (flush / refill /
    /// stickiness traffic; shard-level counters stay per shard, see
    /// [`ShardedBgpq::merged_stats`]).
    pub fn front_stats(&self) -> &OpStats {
        &self.front_stats
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Relaxation counters recorded by the delete path.
    pub fn quality(&self) -> QualitySnapshot {
        self.quality.snapshot()
    }

    pub fn reset_quality(&self) {
        self.quality.reset();
    }

    /// All shards' operation counters folded into one.
    pub fn merged_stats(&self) -> OpStats {
        let total = OpStats::new();
        for s in self.shards.iter() {
            total.merge(s.stats());
        }
        total
    }

    /// Ratio of the most-loaded shard's inserted-item count to the
    /// mean (1.0 = perfectly balanced; meaningful after inserts ran).
    pub fn load_imbalance(&self) -> f64 {
        let loads: Vec<u64> =
            self.shards.iter().map(|s| s.stats().snapshot().items_inserted).collect();
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / loads.len() as f64;
        *loads.iter().max().unwrap() as f64 / mean
    }

    /// Insert a sorted-or-not batch into the shard selected by
    /// `affinity` (callers keep this sticky per worker so consecutive
    /// batches hit the same shard's partial buffer).
    ///
    /// Panics on failure; prefer [`ShardedBgpq::try_insert`] when the
    /// caller wants backpressure and fail-over as values.
    pub fn insert(&self, w: &mut P::Worker, affinity: usize, items: &[Entry<K, V>]) {
        self.try_insert(w, affinity, items)
            .unwrap_or_else(|e| panic!("sharded BGPQ insert failed: {e}"));
    }

    /// Insert with failure handling: route to the affinity shard, and
    /// if that shard is quarantined — or fails during the attempt —
    /// redistribute to the next live shard (round robin from the home
    /// shard, so a dead shard's producers spread over the survivors).
    ///
    /// `Err(Full)` is backpressure, not failure: the shard stays live
    /// (deletes make room) and no key is taken. A shard returning
    /// `Poisoned` or `LockTimeout` is quarantined and the insert moves
    /// on; only when every live shard refused does the error surface —
    /// the last `Full` if any shard was merely full, else `Poisoned`.
    pub fn try_insert(
        &self,
        w: &mut P::Worker,
        affinity: usize,
        items: &[Entry<K, V>],
    ) -> Result<(), QueueError> {
        self.tick(w);
        // Routing reads the breaker states; conflicts only with trips.
        self.touch_front(w, false);
        let s = self.shards.len();
        let home = self.shard_for(affinity);
        let mut full: Option<QueueError> = None;
        for off in 0..s {
            let i = (home + off) % s;
            if self.is_quarantined(i) {
                continue;
            }
            let r = {
                let _g = InflightGuard::enter(&self.breakers[i].inflight);
                self.shards[i].try_insert(w, items)
            };
            match r {
                Ok(()) => {
                    self.note_success(i);
                    return Ok(());
                }
                Err(e @ QueueError::Full { .. }) => full = Some(e),
                Err(_) => {
                    self.touch_front(w, true);
                    self.quarantine(i);
                }
            }
        }
        Err(full.unwrap_or(QueueError::Poisoned))
    }

    /// Relaxed delete-min: sample `c` shards through `rng`, take up to
    /// `count` entries from the best-hinted one, steal from the other
    /// sampled shards on a miss, and finish with an exact sweep of all
    /// shards before returning 0. Appended entries are ascending (they
    /// come from a single shard's delete).
    pub fn delete_min(
        &self,
        w: &mut P::Worker,
        rng: &mut u64,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
    ) -> usize {
        self.try_delete_min(w, rng, out, count)
            .unwrap_or_else(|e| panic!("sharded BGPQ delete_min failed: {e}"))
    }

    /// Relaxed delete-min with failure handling: quarantined shards are
    /// excluded from sampling, stealing and the exact sweep; a shard
    /// that fails mid-attempt is quarantined and the delete continues
    /// on the survivors. `Ok(0)` means every *live* shard was observed
    /// empty (exact at quiescence); `Err(Poisoned)` means no live shard
    /// remains. `count` may exceed the node width `k`: the serving
    /// shard is asked for several `≤ k`-wide linearized batches (the
    /// buffered front's wide-refill path).
    pub fn try_delete_min(
        &self,
        w: &mut P::Worker,
        rng: &mut u64,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
    ) -> Result<usize, QueueError> {
        self.tick(w);
        self.touch_front(w, false);
        // Take the routing scratch out of the worker's slot for the
        // whole delete (the shards' own arenas are a different type in
        // the same slot). A panicking shard op drops it; the next
        // delete just rebuilds.
        let mut rs = self.scratch_slot(w).take::<RouterScratch>().unwrap_or_default();
        let r = self.try_delete_min_routed(w, rng, out, count, &mut rs);
        self.scratch_slot(w).put(rs);
        r.map(|(got, _)| got)
    }

    /// The worker's scratch parking spot, reached through any shard's
    /// platform (slot storage lives on the worker, not the platform).
    #[inline]
    fn scratch_slot<'a>(&self, w: &'a mut P::Worker) -> &'a mut pq_api::ScratchSlot {
        self.shards[0].platform().scratch_slot(w)
    }

    /// A shard delete under an in-flight token, so a later salvage
    /// probe can wait this operation out (the token releases on panic
    /// too — see [`InflightGuard`]). Routed through the heap's
    /// partial-batch entry point, so `count` may exceed the node width
    /// `k` (buffered refills wider than one node).
    #[inline]
    fn guarded_delete(
        &self,
        i: usize,
        w: &mut P::Worker,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
    ) -> Result<usize, QueueError> {
        let _g = InflightGuard::enter(&self.breakers[i].inflight);
        self.shards[i].try_delete_up_to(w, out, count)
    }

    /// The sampled/steal/sweep machinery behind [`Self::try_delete_min`].
    /// Also reports *which* shard served the delete (when one did), so
    /// the buffered front can latch it as the sticky shard.
    fn try_delete_min_routed(
        &self,
        w: &mut P::Worker,
        rng: &mut u64,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
        rs: &mut RouterScratch,
    ) -> Result<(usize, Option<usize>), QueueError> {
        let s = self.shards.len();
        let start = out.len();
        // Breaker-trip snapshot for the SweepDiscardsOnTrip mutation:
        // the mutated sweep compares against this to "notice" a trip
        // that happened while the delete was in flight.
        #[cfg(any(test, feature = "mutations"))]
        let trips_at_entry = self.quarantined_count();
        let RouterScratch { live, hints, picks } = rs;
        live.clear();
        live.extend((0..s).filter(|&i| !self.is_quarantined(i)));
        if live.is_empty() {
            return Err(QueueError::Poisoned);
        }

        if live.len() == 1 {
            let i = live[0];
            return match self.guarded_delete(i, w, out, count) {
                Ok(got) => {
                    if got > 0 {
                        self.quality.record_delete(&[], 0, out[start].key.to_ordered_bits(), false);
                    }
                    self.note_success(i);
                    Ok((got, (got > 0).then_some(i)))
                }
                Err(_) => {
                    self.touch_front(w, true);
                    self.quarantine(i);
                    Err(QueueError::Poisoned)
                }
            };
        }

        // Lock-free routing snapshot: every shard's published root-min
        // (a poisoned shard parks its hint at `u64::MAX`, but we route
        // over the live list regardless). Each hint read races that
        // shard's root publishes — tag it at the shard's root lock.
        hints.clear();
        hints.extend(self.shards.iter().map(|q| {
            q.platform().touch(w, 0, false);
            q.min_hint_bits()
        }));

        let c = self.sample.min(live.len());
        picks.clear();
        if c >= live.len() {
            picks.extend(live.iter().copied());
        } else {
            while picks.len() < c {
                let i = live[(next_u64(rng) % live.len() as u64) as usize];
                if !picks.contains(&i) {
                    picks.push(i);
                }
            }
        }
        picks.sort_unstable_by_key(|&i| hints[i]);

        let mut clean_miss = false;
        for (attempt, &i) in picks.iter().enumerate() {
            match self.guarded_delete(i, w, out, count) {
                Ok(0) => {
                    clean_miss = true;
                    self.note_success(i);
                }
                Ok(got) => {
                    // SweepDiscardsOnTrip: a breaker tripped while this
                    // delete was in flight; the mutated router "rolls
                    // back" the batch and retries from a clean miss —
                    // but the shard already handed the keys over, so
                    // they are silently lost (the bug the explorer's
                    // accounting oracle must catch).
                    #[cfg(any(test, feature = "mutations"))]
                    if self.mutation == Mutation::SweepDiscardsOnTrip
                        && self.quarantined_count() > trips_at_entry
                    {
                        out.truncate(start);
                        clean_miss = true;
                        self.note_success(i);
                        continue;
                    }
                    self.quality.record_delete(
                        hints,
                        i,
                        out[start].key.to_ordered_bits(),
                        attempt > 0,
                    );
                    self.note_success(i);
                    return Ok((got, Some(i)));
                }
                Err(_) => {
                    self.touch_front(w, true);
                    self.quarantine(i);
                }
            }
        }

        // Exact fallback: a hint of `u64::MAX` means "empty or never
        // published", so sampled misses do not prove emptiness. Attempt
        // a real delete on every live shard; only a full sweep of
        // misses reports 0, which at quiescence is precise.
        self.quality.record_full_sweep();
        for &i in live.iter() {
            if self.is_quarantined(i) {
                continue;
            }
            match self.guarded_delete(i, w, out, count) {
                Ok(0) => {
                    clean_miss = true;
                    self.note_success(i);
                }
                Ok(got) => {
                    // See the sampled loop: the mutated exact sweep
                    // also rolls back on an observed trip.
                    #[cfg(any(test, feature = "mutations"))]
                    if self.mutation == Mutation::SweepDiscardsOnTrip
                        && self.quarantined_count() > trips_at_entry
                    {
                        out.truncate(start);
                        clean_miss = true;
                        self.note_success(i);
                        continue;
                    }
                    self.quality.record_delete(hints, i, out[start].key.to_ordered_bits(), true);
                    self.note_success(i);
                    return Ok((got, Some(i)));
                }
                Err(_) => {
                    self.touch_front(w, true);
                    self.quarantine(i);
                }
            }
        }
        if clean_miss {
            Ok((0, None))
        } else {
            Err(QueueError::Poisoned)
        }
    }

    // ------------------------------------------------------------------
    // Buffered mode (sticky batching — see the module docs)
    // ------------------------------------------------------------------

    /// The buffer slot a worker token hashes to. Panics when buffering
    /// is off.
    #[inline]
    pub fn buffer_slot_for(&self, worker: usize) -> usize {
        debug_assert!(!self.buffers.is_empty(), "buffered mode not enabled");
        worker % self.buffers.len()
    }

    /// Lock the caller's *own* slot. Blocking is safe under the lock
    /// discipline: the only other holders are `try_lock` harvesters and
    /// quiescent drains, whose critical sections are pure memory moves
    /// (no platform or shard calls). A poisoned slot (a fault-injected
    /// panic unwound through its owner) is recovered, not propagated —
    /// the buffers inside are always structurally valid.
    #[inline]
    fn lock_slot(&self, slot: usize) -> MutexGuard<'_, WorkerBuffers<K, V>> {
        self.buffers[slot].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try-lock a *foreign* slot; `None` when its owner (or another
    /// harvester) holds it — a busy owner is mid-operation, so its keys
    /// do not count against quiescent exactness.
    #[inline]
    fn try_lock_slot(&self, slot: usize) -> Option<MutexGuard<'_, WorkerBuffers<K, V>>> {
        match self.buffers[slot].try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Buffered insert: stage `items` in the worker's slot, flushing to
    /// the shards first when staging would overflow the policy's
    /// capacity `B`. Batches of `B` or more skip staging entirely (the
    /// buffer exists to *assemble* batches; one that arrives pre-formed
    /// routes directly, in `k`-wide chunks, after a flush keeps its
    /// keys ordered around it).
    ///
    /// `Err` is clean: it is only returned when *none* of the new items
    /// were accepted — the error came from flushing *previously staged*
    /// keys, which remain staged. Once the new items start landing the
    /// call commits: a chunk failure mid-way parks the un-inserted tail
    /// in the stage (over capacity if need be) and still returns `Ok`,
    /// so a retry never duplicates keys; the shards' backpressure
    /// surfaces on the next flush instead.
    pub fn buffered_try_insert(
        &self,
        w: &mut P::Worker,
        worker: usize,
        items: &[Entry<K, V>],
    ) -> Result<(), QueueError> {
        let policy = self.buffer_policy.expect("buffered mode not enabled");
        if items.is_empty() {
            return Ok(());
        }
        let slot = self.buffer_slot_for(worker);
        let cap = policy.insert_capacity;
        if items.len() < cap {
            let mut b = self.lock_slot(slot);
            if b.stage.len() + items.len() > cap {
                self.flush_locked(w, slot, &mut b)?;
            }
            b.stage.extend_from_slice(items);
            self.buffered_keys.fetch_add(items.len() as u64, Ordering::Relaxed);
        } else {
            let mut b = self.lock_slot(slot);
            self.flush_locked(w, slot, &mut b)?;
            let k = self.node_capacity();
            let mut done = 0;
            while done < items.len() {
                let end = (done + k).min(items.len());
                if self.try_insert(w, slot, &items[done..end]).is_err() {
                    b.stage.extend_from_slice(&items[done..]);
                    self.buffered_keys
                        .fetch_add((items.len() - done) as u64, Ordering::Relaxed);
                    break;
                }
                done = end;
            }
        }
        OpStats::bump(&self.front_stats.inserts);
        OpStats::add(&self.front_stats.items_inserted, items.len() as u64);
        Ok(())
    }

    /// Buffered delete-min: serve up to `count` entries from the
    /// worker's deletion buffer, refilling it with one wide sampled
    /// delete when empty. `Ok(0)` keeps the unbuffered exactness
    /// contract *extended to buffers*: it is returned only after every
    /// live shard swept empty, the caller's own staged inserts were
    /// served, and every reachable foreign slot was harvested — at
    /// quiescence, `Ok(0)` really means the queue holds nothing.
    ///
    /// Entries are ascending per call (they come from one sorted
    /// buffer).
    pub fn buffered_try_delete_min(
        &self,
        w: &mut P::Worker,
        worker: usize,
        rng: &mut u64,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
    ) -> Result<usize, QueueError> {
        let policy = self.buffer_policy.expect("buffered mode not enabled");
        assert!(count >= 1, "delete batch must request at least one entry");
        let slot = self.buffer_slot_for(worker);
        let mut b = self.lock_slot(slot);
        if b.ready.is_empty() {
            self.refill_locked(w, slot, rng, &mut b, &policy)?;
        }
        let n = count.min(b.ready.len());
        let at = b.ready.len() - n;
        out.extend(b.ready.drain(at..).rev());
        if n > 0 {
            self.buffered_keys.fetch_sub(n as u64, Ordering::Relaxed);
        }
        OpStats::bump(&self.front_stats.delete_mins);
        OpStats::add(&self.front_stats.items_deleted, n as u64);
        Ok(n)
    }

    /// Restock `b.ready` (which must be empty): sticky shard first,
    /// then a fresh sample through the full routed machinery, then —
    /// only when every live shard swept empty — the caller's own stage
    /// and finally a harvest of every reachable foreign slot.
    fn refill_locked(
        &self,
        w: &mut P::Worker,
        slot: usize,
        rng: &mut u64,
        b: &mut WorkerBuffers<K, V>,
        policy: &BufferPolicy,
    ) -> Result<usize, QueueError> {
        debug_assert!(b.ready.is_empty());
        self.tick(w);
        let k = self.node_capacity();
        let width = if policy.refill_width == 0 { k } else { policy.refill_width };
        b.tmp.clear();

        // Sticky reuse: skip sampling while the latched shard has
        // tenure left and is still live. Rank error is still recorded
        // honestly against a fresh hint scan.
        if b.sticky_left > 0 {
            let i = b.sticky;
            b.sticky_left -= 1;
            if i < self.shards.len() && !self.is_quarantined(i) {
                OpStats::bump(&self.front_stats.sticky_reuses);
                match self.guarded_delete(i, w, &mut b.tmp, width) {
                    Ok(got) if got > 0 => {
                        let first = b.tmp[0].key.to_ordered_bits();
                        self.quality.record_delete_with_error(self.hint_error(w, i, first), false);
                        self.note_success(i);
                        self.commit_refill(b, got, width);
                        return Ok(got);
                    }
                    Ok(_) => {
                        // Sticky shard ran dry; fall through to a
                        // fresh sample.
                        b.sticky_left = 0;
                        self.note_success(i);
                    }
                    Err(_) => {
                        self.touch_front(w, true);
                        self.quarantine(i);
                        b.sticky_left = 0;
                    }
                }
            } else {
                b.sticky_left = 0;
            }
        }

        OpStats::bump(&self.front_stats.sticky_resamples);
        let mut rs = self.scratch_slot(w).take::<RouterScratch>().unwrap_or_default();
        let routed = self.try_delete_min_routed(w, rng, &mut b.tmp, width, &mut rs);
        self.scratch_slot(w).put(rs);
        match routed {
            Ok((got, src)) if got > 0 => {
                if let Some(i) = src {
                    b.sticky = i;
                    b.sticky_left = policy.stickiness - 1;
                }
                self.commit_refill(b, got, width);
                Ok(got)
            }
            Ok(_) => Ok(self.serve_parked(slot, b)),
            // No live shard remains — but parked keys are still
            // reachable and must win over a Poisoned verdict.
            Err(e) => {
                if self.serve_parked(slot, b) > 0 {
                    Ok(b.ready.len())
                } else {
                    Err(e)
                }
            }
        }
    }

    /// Account one shard-sourced refill and move `b.tmp` into
    /// `b.ready` (descending, so pops serve ascending). Sorting rather
    /// than reversing: a refill wider than `k` is several linearized
    /// shard batches, whose concatenation need not be globally sorted
    /// under concurrent inserts.
    fn commit_refill(&self, b: &mut WorkerBuffers<K, V>, got: usize, width: usize) {
        OpStats::bump(&self.front_stats.buffer_refills);
        OpStats::add(&self.front_stats.buffer_refill_items, got as u64);
        self.front_stats.record_batch_occupancy(got, width);
        self.buffered_keys.fetch_add(got as u64, Ordering::Relaxed);
        b.tmp.sort_unstable_by(|x, y| y.key.cmp(&x.key));
        std::mem::swap(&mut b.ready, &mut b.tmp);
        b.tmp.clear();
    }

    /// Exhausted-shards fallback: serve the caller's own staged inserts
    /// and harvest every reachable foreign slot straight into `b.ready`
    /// (the keys are already parked, so the global count is unchanged).
    /// Returns how many keys became servable.
    fn serve_parked(&self, slot: usize, b: &mut WorkerBuffers<K, V>) -> usize {
        b.tmp.append(&mut b.stage);
        for j in 0..self.buffers.len() {
            if j == slot {
                continue;
            }
            // Foreign slot: try_lock only, pure memory moves inside.
            if let Some(mut fb) = self.try_lock_slot(j) {
                b.tmp.append(&mut fb.ready);
                b.tmp.append(&mut fb.stage);
            }
        }
        if b.tmp.is_empty() {
            return 0;
        }
        b.tmp.sort_unstable_by(|x, y| y.key.cmp(&x.key));
        std::mem::swap(&mut b.ready, &mut b.tmp);
        b.tmp.clear();
        b.ready.len()
    }

    /// Flush the staged inserts of `b` to the shards in `k`-wide
    /// chunks. On `Err` the *unflushed* keys remain staged (the flushed
    /// prefix is committed) — a failed flush never loses keys. Keys
    /// whose home shard is quarantined re-route through
    /// [`Self::try_insert`]'s redistribution and are counted in
    /// [`QualitySnapshot::buffer_reroutes`].
    fn flush_locked(
        &self,
        w: &mut P::Worker,
        slot: usize,
        b: &mut WorkerBuffers<K, V>,
    ) -> Result<usize, QueueError> {
        let total = b.stage.len();
        if total == 0 {
            return Ok(0);
        }
        if self.is_quarantined(self.shard_for(slot)) {
            self.quality.record_buffer_reroute(total as u64);
        }
        let k = self.node_capacity();
        let cap = self.buffer_policy.map_or(k, |p| p.insert_capacity);
        let mut done = 0;
        let r = loop {
            if done >= total {
                break Ok(());
            }
            let end = (done + k).min(total);
            match self.try_insert(w, slot, &b.stage[done..end]) {
                Ok(()) => done = end,
                Err(e) => break Err(e),
            }
        };
        b.stage.drain(..done);
        self.buffered_keys.fetch_sub(done as u64, Ordering::Relaxed);
        if done > 0 {
            OpStats::bump(&self.front_stats.buffer_flushes);
            OpStats::add(&self.front_stats.buffer_flush_items, done as u64);
            self.front_stats.record_batch_occupancy(done.min(cap), cap);
        }
        r.map(|()| done)
    }

    /// Shard-level rank error of a delete served by shard `taken`
    /// whose smallest key has ordered bits `first`: how many *other*
    /// shards currently hint a smaller minimum. Same tagging as the
    /// sampled path's hint snapshot.
    fn hint_error(&self, w: &mut P::Worker, taken: usize, first: u64) -> u64 {
        self.shards
            .iter()
            .enumerate()
            .filter(|&(j, q)| {
                j != taken && {
                    q.platform().touch(w, 0, false);
                    q.min_hint_bits() < first
                }
            })
            .count() as u64
    }

    /// Flush one worker's staged inserts to the shards (deletion-buffer
    /// keys stay put — they were already removed from the shards). No-op
    /// when unbuffered.
    pub fn flush_slot(&self, w: &mut P::Worker, worker: usize) -> Result<usize, QueueError> {
        if self.buffers.is_empty() {
            return Ok(0);
        }
        let slot = self.buffer_slot_for(worker);
        let mut b = self.lock_slot(slot);
        self.flush_locked(w, slot, &mut b)
    }

    /// Fully quiesce one worker's slot: flush staged inserts *and*
    /// return deletion-buffer keys to the shards, leaving the slot
    /// empty. On `Err` unreturned keys remain parked (never lost).
    /// No-op when unbuffered. Returns keys moved back to the shards.
    pub fn quiesce_slot(&self, w: &mut P::Worker, worker: usize) -> Result<usize, QueueError> {
        if self.buffers.is_empty() {
            return Ok(0);
        }
        let slot = self.buffer_slot_for(worker);
        let mut b = self.lock_slot(slot);
        let mut moved = self.flush_locked(w, slot, &mut b)?;
        if !b.ready.is_empty() {
            // Reinsert ascending so the home shard sees sorted batches.
            b.tmp.clear();
            while let Some(e) = b.ready.pop() {
                b.tmp.push(e);
            }
            let total = b.tmp.len();
            let k = self.node_capacity();
            let mut done = 0;
            while done < total {
                let end = (done + k).min(total);
                if let Err(e) = self.try_insert(w, slot, &b.tmp[done..end]) {
                    // Park the remainder back (descending), no loss.
                    let rest = b.tmp.split_off(done);
                    b.ready.extend(rest.into_iter().rev());
                    b.tmp.clear();
                    self.buffered_keys.fetch_sub(done as u64, Ordering::Relaxed);
                    return Err(e);
                }
                done = end;
            }
            b.tmp.clear();
            self.buffered_keys.fetch_sub(total as u64, Ordering::Relaxed);
            moved += total;
        }
        Ok(moved)
    }

    /// Quiesce every slot (drains and benches; quiescent callers).
    pub fn quiesce_all(&self, w: &mut P::Worker) -> Result<usize, QueueError> {
        let mut moved = 0;
        for slot in 0..self.buffers.len() {
            moved += self.quiesce_slot(w, slot)?;
        }
        Ok(moved)
    }

    /// Remove every item from live shards and buffer slots (shard by
    /// shard; the concatenation is sorted per shard / per slot, not
    /// globally). Returns the number drained. Quarantined shards are
    /// skipped — their contents are unreachable by design. Quiescent
    /// callers only in buffered mode (slot locks are taken blocking).
    pub fn drain(&self, w: &mut P::Worker, out: &mut Vec<Entry<K, V>>) -> usize {
        let parked = self.drain_buffers(out, true);
        parked
            + self
                .shards
                .iter()
                .enumerate()
                .filter(|&(i, _)| !self.is_quarantined(i))
                .map(|(_, s)| s.drain(w, out))
                .sum::<usize>()
    }

    /// Discard every item in live shards and buffer slots. Returns the
    /// number discarded.
    pub fn clear(&self, w: &mut P::Worker) -> usize {
        let parked = self.drain_buffers(&mut Vec::new(), false);
        parked
            + self
                .shards
                .iter()
                .enumerate()
                .filter(|&(i, _)| !self.is_quarantined(i))
                .map(|(_, s)| s.clear(w))
                .sum::<usize>()
    }

    /// Empty every buffer slot, appending (when `keep`) each slot's
    /// keys to `out` in ascending key order per slot.
    fn drain_buffers(&self, out: &mut Vec<Entry<K, V>>, keep: bool) -> usize {
        let mut total = 0;
        for slot in 0..self.buffers.len() {
            let mut b = self.lock_slot(slot);
            let n = b.parked();
            if n == 0 {
                continue;
            }
            if keep {
                let start = out.len();
                out.extend(b.ready.drain(..).rev());
                out.append(&mut b.stage);
                out[start..].sort_unstable_by_key(|e| e.key);
            } else {
                b.ready.clear();
                b.stage.clear();
            }
            total += n;
        }
        if total > 0 {
            self.buffered_keys.fetch_sub(total as u64, Ordering::Relaxed);
        }
        total
    }

    /// Check every live shard's heap invariants (quiescent callers
    /// only). Returns the total item count including buffered keys, so
    /// it stays comparable to [`ShardedBgpq::len`]. Quarantined shards
    /// are skipped: a crashed shard's invariants are void (that is why
    /// it was quarantined).
    pub fn check_invariants(&self) -> usize {
        self.shards
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.is_quarantined(i))
            .map(|(_, s)| s.check_invariants())
            .sum::<usize>()
            + self.buffered_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_runtime::{CpuPlatform, CpuWorker};

    fn sharded(s: usize, c: usize, k: usize) -> ShardedBgpq<u32, u32, CpuPlatform> {
        let queue = BgpqOptions { node_capacity: k, max_nodes: 256, ..Default::default() };
        let platforms = (0..s).map(|_| CpuPlatform::new(queue.max_nodes + 1)).collect();
        ShardedBgpq::with_platforms(platforms, ShardedOptions::new(s, c, queue))
    }

    #[test]
    fn routes_inserts_by_affinity() {
        let q = sharded(4, 2, 8);
        let mut w = CpuWorker::new();
        for a in 0..8usize {
            q.insert(&mut w, a, &[Entry::new(a as u32, 0)]);
        }
        // affinity a and a+4 land on the same shard.
        for i in 0..4 {
            assert_eq!(q.shard(i).len(), 2, "shard {i}");
        }
        assert_eq!(q.len(), 8);
    }

    #[test]
    fn drains_exactly_across_shards() {
        let q = sharded(3, 1, 4);
        let mut w = CpuWorker::new();
        let mut rng = 7u64;
        for i in 0..60u32 {
            q.insert(&mut w, (i % 3) as usize, &[Entry::new(i, i)]);
        }
        let mut out = Vec::new();
        let mut got = 0;
        loop {
            let n = q.delete_min(&mut w, &mut rng, &mut out, 4);
            if n == 0 {
                break;
            }
            got += n;
        }
        assert_eq!(got, 60, "exact sweep must drain every shard");
        assert!(q.is_empty());
        let mut keys: Vec<u32> = out.iter().map(|e| e.key).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..60).collect::<Vec<_>>());
        assert_eq!(q.check_invariants(), 0);
    }

    #[test]
    fn single_shard_is_strict() {
        let q = sharded(1, 1, 4);
        let mut w = CpuWorker::new();
        let mut rng = 3u64;
        q.insert(&mut w, 0, &[Entry::new(9u32, 0), Entry::new(2, 0), Entry::new(5, 0)]);
        let mut out = Vec::new();
        assert_eq!(q.delete_min(&mut w, &mut rng, &mut out, 4), 3);
        assert_eq!(out.iter().map(|e| e.key).collect::<Vec<_>>(), vec![2, 5, 9]);
        assert_eq!(q.quality().rank_error_sum, 0);
    }

    #[test]
    fn sampled_delete_prefers_best_hint() {
        let q = sharded(2, 2, 4);
        let mut w = CpuWorker::new();
        let mut rng = 1u64;
        q.insert(&mut w, 0, &[Entry::new(100u32, 0)]);
        q.insert(&mut w, 1, &[Entry::new(5u32, 0)]);
        let mut out = Vec::new();
        // c == S: both hints visible, must take the smaller minimum.
        assert_eq!(q.delete_min(&mut w, &mut rng, &mut out, 1), 1);
        assert_eq!(out[0].key, 5);
        assert_eq!(q.quality().rank_error_sum, 0, "c = S never skips a smaller shard");
    }

    #[test]
    fn quarantined_shard_is_bypassed_for_inserts_and_deletes() {
        use bgpq_runtime::{CpuPlatform, FaultAction, FaultPlan, InjectionPoint};
        use std::sync::Arc;

        // Shard 0 gets a fault plan that panics its first insert
        // heapify; the other shards are healthy.
        let queue = BgpqOptions { node_capacity: 2, max_nodes: 64, ..Default::default() };
        let plan = Arc::new(FaultPlan::new().with_rule(
            InjectionPoint::MidInsertHeapify,
            1,
            FaultAction::Panic,
        ));
        let platforms: Vec<CpuPlatform> = (0..3)
            .map(|i| {
                let p = CpuPlatform::new(queue.max_nodes + 1);
                if i == 0 {
                    p.with_faults(plan.clone())
                } else {
                    p
                }
            })
            .collect();
        let q: ShardedBgpq<u32, u32, CpuPlatform> =
            ShardedBgpq::with_platforms(platforms, ShardedOptions::new(3, 2, queue));
        let mut w = CpuWorker::new();

        // Crash shard 0 directly (the router only sees the poisoned
        // state afterwards, as it would from another thread's crash).
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for i in 0..32u32 {
                q.shard(0).insert(&mut w, &[Entry::new(i, 0), Entry::new(i + 100, 0)]);
            }
        }));
        assert!(r.is_err(), "injected panic must fire");
        assert!(q.shard(0).is_poisoned());

        // Affinity 0 points at the dead shard; try_insert must
        // redistribute, quarantine it, and succeed on a survivor.
        q.try_insert(&mut w, 0, &[Entry::new(7u32, 7)]).expect("redistributed insert");
        assert!(q.is_quarantined(0));
        assert_eq!(q.quarantined_count(), 1);
        assert_eq!(q.quality().quarantines, 1);
        assert_eq!(q.shard(0).stats().snapshot().shard_quarantines, 1);
        assert_eq!(q.len(), 1, "len counts only live shards");

        // Deletes skip the quarantined shard and drain the survivors.
        let mut rng = 5u64;
        let mut out = Vec::new();
        assert_eq!(q.try_delete_min(&mut w, &mut rng, &mut out, 2).unwrap(), 1);
        assert_eq!(out[0].key, 7);
        assert_eq!(q.try_delete_min(&mut w, &mut rng, &mut out, 2).unwrap(), 0);
        assert_eq!(q.check_invariants(), 0, "invariant sweep skips the quarantined shard");
    }

    #[test]
    fn all_shards_quarantined_reports_poisoned() {
        let q = sharded(2, 1, 4);
        let mut w = CpuWorker::new();
        q.quarantine(0);
        q.quarantine(1);
        q.quarantine(1); // idempotent
        assert_eq!(q.quarantined_count(), 2);
        assert_eq!(q.quality().quarantines, 2);
        assert!(matches!(
            q.try_insert(&mut w, 0, &[Entry::new(1u32, 1)]),
            Err(QueueError::Poisoned)
        ));
        let mut rng = 9u64;
        let mut out = Vec::new();
        assert!(matches!(
            q.try_delete_min(&mut w, &mut rng, &mut out, 1),
            Err(QueueError::Poisoned)
        ));
        assert!(out.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn full_shard_is_backpressure_not_quarantine() {
        // One tiny shard: filling it must yield Full, leave it live,
        // and deleting makes room again.
        let queue = BgpqOptions { node_capacity: 2, max_nodes: 2, ..Default::default() };
        let platforms = vec![CpuPlatform::new(queue.max_nodes + 1)];
        let q: ShardedBgpq<u32, u32, CpuPlatform> =
            ShardedBgpq::with_platforms(platforms, ShardedOptions::new(1, 1, queue));
        let mut w = CpuWorker::new();
        while q.try_insert(&mut w, 0, &[Entry::new(1, 0), Entry::new(2, 0)]).is_ok() {}
        assert!(matches!(
            q.try_insert(&mut w, 0, &[Entry::new(3, 0), Entry::new(4, 0)]),
            Err(QueueError::Full { .. })
        ));
        assert_eq!(q.quarantined_count(), 0, "Full must not quarantine");
        let mut rng = 3u64;
        let mut out = Vec::new();
        q.try_delete_min(&mut w, &mut rng, &mut out, 2).unwrap();
        q.try_insert(&mut w, 0, &[Entry::new(3, 0), Entry::new(4, 0)])
            .expect("room freed by delete");
    }

    #[test]
    fn crashed_shard_is_salvaged_and_readmitted_within_bounded_probes() {
        use bgpq_runtime::{FaultAction, FaultPlan, InjectionPoint};
        use std::sync::Arc;

        // Shard 0 crashes on its first insert heapify; recovery is
        // enabled with tiny backoffs so the drill stays fast.
        let queue = BgpqOptions { node_capacity: 2, max_nodes: 64, ..Default::default() };
        let rec = RecoveryOptions {
            base_backoff_ops: 4,
            max_backoff_ops: 16,
            trial_ops: 2,
            max_generations: 4,
        };
        let plan = Arc::new(FaultPlan::new().with_rule(
            InjectionPoint::MidInsertHeapify,
            1,
            FaultAction::Panic,
        ));
        let platforms: Vec<CpuPlatform> = (0..3)
            .map(|i| {
                let p = CpuPlatform::new(queue.max_nodes + 1);
                if i == 0 {
                    p.with_faults(plan.clone())
                } else {
                    p
                }
            })
            .collect();
        let q: ShardedBgpq<u32, u32, CpuPlatform> = ShardedBgpq::with_platforms_recovering(
            platforms,
            ShardedOptions::new(3, 2, queue).with_recovery(rec),
            bgpq_recover::salvage_heap,
        );
        let mut w = CpuWorker::new();

        // Crash shard 0 mid-insert, counting the batches that settled.
        let mut settled = 0u32;
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for i in 0..32u32 {
                q.shard(0).insert(&mut w, &[Entry::new(i, 0), Entry::new(i + 100, 0)]);
                settled = i + 1;
            }
        }));
        assert!(r.is_err(), "injected panic must fire");
        assert!(q.shard(0).is_poisoned());

        // The next routed insert notices, quarantines, and fails over.
        q.try_insert(&mut w, 0, &[Entry::new(7u32, 7)]).expect("redistributed insert");
        assert!(q.is_quarantined(0));
        assert_eq!(q.breaker_state(0), BreakerState::Open);

        // Pump traffic over rotating affinities (so the re-admitted
        // shard sees trial ops from its returning producers); the
        // breaker must probe, salvage, trial and close within a small
        // bounded number of operations.
        let mut rng = 11u64;
        let mut pumped = Vec::new();
        let mut ops = 0usize;
        while q.breaker_state(0) != BreakerState::Closed {
            ops += 1;
            assert!(ops <= 400, "breaker must close within bounded probes");
            q.try_insert(&mut w, ops, &[Entry::new(1_000 + ops as u32, 0)]).unwrap();
            pumped.push(1_000 + ops as u32);
        }
        let s = q.quality();
        assert_eq!(s.salvages, 1, "one salvage pass rebuilt the shard");
        assert_eq!(s.readmissions, 1, "trial traffic closed the breaker");
        assert!(s.probes >= 1);
        assert_eq!(s.keys_lost, 2, "exactly one in-flight batch is reported lost, not silent");
        assert_eq!(
            s.keys_recovered,
            u64::from(settled) * 2,
            "every other accepted key is walked out"
        );
        assert_eq!(q.quarantined_count(), 0);

        // The re-admitted shard serves again: home-affinity inserts
        // land on it, and a full drain conserves keys exactly — the
        // queue accepted `settled * 2 + 2` keys before the crash (the
        // dying insert had already merged into the heap), lost a
        // reported 2 of them, and everything else drains once each.
        // (Which two keys were lost is not specified: a crashed
        // insert-heapify may have swapped batch keys into the heap and
        // carried settled ones on its stack.)
        q.try_insert(&mut w, 0, &[Entry::new(9_999u32, 0)]).unwrap();
        let mut out = Vec::new();
        while q.try_delete_min(&mut w, &mut rng, &mut out, 2).unwrap() > 0 {}
        let got: Vec<u32> = out.iter().map(|e| e.key).collect();
        let accepted = u64::from(settled) * 2 + 2;
        assert_eq!(
            got.len() as u64,
            accepted - s.keys_lost + 2 + pumped.len() as u64,
            "drain returns every accepted key minus exactly the reported loss"
        );
        let offered: std::collections::HashSet<u32> = (0..32u32)
            .flat_map(|i| [i, i + 100])
            .chain([7, 9_999])
            .chain(pumped.iter().copied())
            .collect();
        let mut uniq = got.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), got.len(), "no key drains twice");
        assert!(got.iter().all(|k| offered.contains(k)), "salvage never invents keys");
        assert_eq!(q.check_invariants(), 0);
    }

    #[test]
    fn recovery_disabled_keeps_quarantine_permanent() {
        // Even with RecoveryOptions set, a router built without a
        // salvager (plain `with_platforms`) must never probe.
        let queue = BgpqOptions { node_capacity: 4, max_nodes: 64, ..Default::default() };
        let platforms = (0..2).map(|_| CpuPlatform::new(queue.max_nodes + 1)).collect();
        let q: ShardedBgpq<u32, u32, CpuPlatform> = ShardedBgpq::with_platforms(
            platforms,
            ShardedOptions::new(2, 1, queue).with_recovery(RecoveryOptions::default()),
        );
        let mut w = CpuWorker::new();
        q.quarantine(0);
        for i in 0..200u32 {
            // Full is fine (one small surviving shard); the point is
            // that hundreds of ticks never probe the open breaker.
            let _ = q.try_insert(&mut w, 1, &[Entry::new(i, 0)]);
        }
        assert_eq!(q.breaker_state(0), BreakerState::Open, "no salvager, no re-admission");
        assert_eq!(q.quality().probes, 0);
        assert_eq!(q.quality().salvages, 0);
    }

    #[test]
    fn merged_stats_fold_all_shards() {
        let q = sharded(4, 2, 8);
        let mut w = CpuWorker::new();
        for a in 0..4usize {
            q.insert(&mut w, a, &[Entry::new(1u32, 0), Entry::new(2, 0)]);
        }
        let total = q.merged_stats().snapshot();
        assert_eq!(total.inserts, 4);
        assert_eq!(total.items_inserted, 8);
        assert!((q.load_imbalance() - 1.0).abs() < 1e-12, "even affinity = balanced");
    }

    fn buffered(
        s: usize,
        c: usize,
        k: usize,
        policy: pq_api::BufferPolicy,
    ) -> ShardedBgpq<u32, u32, CpuPlatform> {
        let queue = BgpqOptions { node_capacity: k, max_nodes: 256, ..Default::default() };
        let platforms = (0..s).map(|_| CpuPlatform::new(queue.max_nodes + 1)).collect();
        ShardedBgpq::with_platforms(
            platforms,
            ShardedOptions::new(s, c, queue).with_buffering(policy),
        )
    }

    #[test]
    fn buffered_insert_stages_until_capacity_then_flushes() {
        let policy = pq_api::BufferPolicy::new().with_insert_capacity(4);
        let q = buffered(2, 1, 4, policy);
        let mut w = CpuWorker::new();
        for i in 0..3u32 {
            q.buffered_try_insert(&mut w, 0, &[Entry::new(i, i)]).unwrap();
        }
        // Three keys parked in the slot, none in a shard yet — but all
        // three visible through len().
        assert_eq!(q.buffered_len(), 3);
        assert_eq!(q.shard(0).len() + q.shard(1).len(), 0);
        assert_eq!(q.len(), 3);
        assert_eq!(q.front_stats().snapshot().buffer_flushes, 0);

        // The 4th and 5th key would overflow capacity 4: the slot
        // flushes its 3 staged keys down first, then stages the rest.
        q.buffered_try_insert(&mut w, 0, &[Entry::new(3, 3), Entry::new(4, 4)]).unwrap();
        let fs = q.front_stats().snapshot();
        assert_eq!(fs.buffer_flushes, 1);
        assert_eq!(fs.buffer_flush_items, 3);
        assert_eq!(q.buffered_len(), 2);
        assert_eq!(q.len(), 5);

        // An over-capacity batch bypasses the stage entirely (after
        // flushing what was parked).
        let big: Vec<Entry<u32, u32>> = (10..20u32).map(|i| Entry::new(i, i)).collect();
        q.buffered_try_insert(&mut w, 0, &big).unwrap();
        assert_eq!(q.buffered_len(), 0, "wide batches go straight to the shard");
        assert_eq!(q.len(), 15);
        assert_eq!(q.check_invariants(), 15);
    }

    #[test]
    fn buffered_delete_refills_wide_and_serves_locally() {
        let policy =
            pq_api::BufferPolicy::new().with_insert_capacity(8).with_refill_width(8).with_stickiness(4);
        let q = buffered(2, 2, 4, policy);
        let mut w = CpuWorker::new();
        let mut rng = 11u64;
        let items: Vec<Entry<u32, u32>> = (0..16u32).map(|i| Entry::new(i, i)).collect();
        for chunk in items[..8].chunks(4) {
            q.try_insert(&mut w, 0, chunk).unwrap();
        }
        for chunk in items[8..].chunks(4) {
            q.try_insert(&mut w, 1, chunk).unwrap();
        }

        let mut out = Vec::new();
        // First pop triggers one 8-wide refill (two k=4 batches from
        // the best shard), then serves 1 from the local buffer.
        assert_eq!(q.buffered_try_delete_min(&mut w, 0, &mut rng, &mut out, 1).unwrap(), 1);
        assert_eq!(out[0].key, 0, "quiescent single-worker pop is exact");
        let fs = q.front_stats().snapshot();
        assert_eq!(fs.buffer_refills, 1);
        assert_eq!(fs.buffer_refill_items, 8);
        assert!((fs.mean_refill_occupancy() - 8.0).abs() < 1e-12);
        assert_eq!(q.buffered_len(), 7);

        // The next 7 pops serve from the buffer with no new refill.
        for want in 1..8u32 {
            out.clear();
            assert_eq!(q.buffered_try_delete_min(&mut w, 0, &mut rng, &mut out, 1).unwrap(), 1);
            assert_eq!(out[0].key, want);
        }
        assert_eq!(q.front_stats().snapshot().buffer_refills, 1);

        // Drain the rest; emptiness is exact even through the buffer.
        out.clear();
        let mut got = 8;
        while q.buffered_try_delete_min(&mut w, 0, &mut rng, &mut out, 4).unwrap() > 0 {
            got = 8 + out.len();
        }
        assert_eq!(got, 16);
        assert!(q.is_empty());
        assert_eq!(q.check_invariants(), 0);
    }

    #[test]
    fn sticky_tenure_counts_reuses_and_resamples() {
        let policy =
            pq_api::BufferPolicy::new().with_insert_capacity(8).with_refill_width(2).with_stickiness(3);
        let q = buffered(2, 1, 2, policy);
        let mut w = CpuWorker::new();
        let mut rng = 5u64;
        let items: Vec<Entry<u32, u32>> = (0..24u32).map(|i| Entry::new(i, i)).collect();
        for chunk in items[..12].chunks(2) {
            q.try_insert(&mut w, 0, chunk).unwrap();
        }
        for chunk in items[12..].chunks(2) {
            q.try_insert(&mut w, 1, chunk).unwrap();
        }

        // 12 pops = 6 refills of width 2: sample, reuse, reuse, sample,
        // reuse, reuse under stickiness 3.
        let mut out = Vec::new();
        for _ in 0..12 {
            out.clear();
            assert_eq!(q.buffered_try_delete_min(&mut w, 0, &mut rng, &mut out, 1).unwrap(), 1);
        }
        let fs = q.front_stats().snapshot();
        assert_eq!(fs.buffer_refills, 6);
        assert_eq!(fs.sticky_resamples, 2);
        assert_eq!(fs.sticky_reuses, 4);
        assert!((fs.sticky_reuse_rate() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn parked_keys_are_reachable_from_other_slots_and_drains() {
        let policy = pq_api::BufferPolicy::new().with_insert_capacity(16).with_refill_width(4);
        let q = buffered(2, 1, 4, policy);
        let mut w = CpuWorker::new();
        let mut rng = 9u64;

        // Worker 0 stages 3 keys and walks away without flushing.
        q.buffered_try_insert(&mut w, 0, &[Entry::new(5u32, 5), Entry::new(1, 1), Entry::new(3, 3)])
            .unwrap();
        assert_eq!(q.buffered_len(), 3);
        assert!(!q.is_empty(), "parked keys must keep the queue non-empty");

        // Worker 1 (a different slot) finds the shards empty, harvests
        // the parked keys, and serves them in order.
        let mut out = Vec::new();
        assert_eq!(q.buffered_try_delete_min(&mut w, 1, &mut rng, &mut out, 2).unwrap(), 2);
        assert_eq!(out.iter().map(|e| e.key).collect::<Vec<_>>(), vec![1, 3]);

        // The last harvested key sits in worker 1's deletion buffer
        // now; a drain must still find it.
        let mut rest = Vec::new();
        q.drain(&mut w, &mut rest);
        assert_eq!(rest.iter().map(|e| e.key).collect::<Vec<_>>(), vec![5]);
        assert!(q.is_empty());
        assert_eq!(q.buffered_len(), 0);
        assert_eq!(q.check_invariants(), 0);
    }

    #[test]
    fn quiesce_returns_every_parked_key_to_the_shards() {
        let policy = pq_api::BufferPolicy::new().with_insert_capacity(16).with_refill_width(4);
        let q = buffered(3, 2, 4, policy);
        let mut w = CpuWorker::new();
        let mut rng = 13u64;

        let items: Vec<Entry<u32, u32>> = (0..12u32).map(|i| Entry::new(i, i)).collect();
        for chunk in items.chunks(4) {
            q.try_insert(&mut w, 0, chunk).unwrap();
        }
        // Stage some inserts and pull a refill into a deletion buffer.
        q.buffered_try_insert(&mut w, 1, &[Entry::new(50u32, 50), Entry::new(51, 51)]).unwrap();
        let mut out = Vec::new();
        q.buffered_try_delete_min(&mut w, 2, &mut rng, &mut out, 1).unwrap();
        assert!(q.buffered_len() > 0);

        let moved = q.quiesce_all(&mut w).unwrap();
        assert!(moved > 0);
        assert_eq!(q.buffered_len(), 0, "quiesce leaves nothing parked");
        let shard_total: usize = (0..3).map(|i| q.shard(i).len()).sum();
        assert_eq!(shard_total, q.len());
        assert_eq!(q.len(), 13, "12 + 2 staged - 1 popped");
        assert_eq!(q.check_invariants(), 13);
    }

    #[test]
    fn buffered_flush_reroutes_around_quarantine() {
        let policy = pq_api::BufferPolicy::new().with_insert_capacity(8).with_refill_width(4);
        let q = buffered(2, 1, 4, policy);
        let mut w = CpuWorker::new();

        // Slot 0's home shard is shard 0; park keys, then quarantine it
        // out from under the buffer.
        q.buffered_try_insert(&mut w, 0, &[Entry::new(1u32, 1), Entry::new(2, 2)]).unwrap();
        q.quarantine(0);
        assert_eq!(q.flush_slot(&mut w, 0).unwrap(), 2);
        assert_eq!(q.buffered_len(), 0);
        assert_eq!(q.shard(1).len(), 2, "staged keys re-routed to the survivor");
        assert_eq!(q.quality().buffer_reroutes, 2);
        assert_eq!(q.len(), 2, "zero silent loss");
    }
}
