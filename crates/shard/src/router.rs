//! The sharded router: `S` independent BGPQ instances behind a
//! MultiQueue-style front.
//!
//! * **Inserts** route whole batches to one shard chosen by the
//!   caller's sticky affinity, so each shard still sees the sorted,
//!   batch-at-a-time traffic its partial buffer and root cache are
//!   built for (§3.2/§4.3 of the paper apply per shard unchanged).
//! * **Deletes** sample `c` of `S` shards, compare their cached
//!   root-min hints ([`Bgpq::min_hint_bits`]) without taking any locks,
//!   and take a batch from the best. If the best raced empty the
//!   remaining sampled shards are tried in hint order (work stealing);
//!   if all sampled shards miss, an exact sweep attempts a real delete
//!   on *every* shard before reporting emptiness — so quiescent
//!   emptiness and full drains remain precise even though ordering
//!   between shards is relaxed.
//!
//! The router is generic over [`Platform`]: the same code runs on
//! `CpuPlatform` (real threads; see [`crate::cpu`]) and on the gpu-sim
//! scheduler, where each shard models a queue private to one GPU / SM
//! partition.

use crate::quality::{QualitySnapshot, QualityStats};
use bgpq::{Bgpq, BgpqOptions};
use bgpq_runtime::Platform;
use pq_api::{Entry, KeyType, OpStats, ValueType};

/// Configuration of a [`ShardedBgpq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedOptions {
    /// Number of independent BGPQ shards `S`.
    pub shards: usize,
    /// Shards sampled per delete `c` (clamped to `1..=S`). `c = S`
    /// degenerates to always taking the globally best hint.
    pub sample: usize,
    /// Per-shard heap configuration. Every shard is built with the same
    /// options; note the heap preallocates `max_nodes * node_capacity`
    /// entries per shard, so total memory scales with `S`.
    pub queue: BgpqOptions,
}

impl ShardedOptions {
    pub fn new(shards: usize, sample: usize, queue: BgpqOptions) -> Self {
        Self { shards, sample, queue }
    }

    /// Options where *each shard* can hold `items` keys with node
    /// capacity `k`. Sizing every shard for the full workload is
    /// deliberate: sticky affinity means a single producer thread sends
    /// everything to one shard, and the heap's backing array does not
    /// grow.
    pub fn with_capacity_for(shards: usize, sample: usize, k: usize, items: usize) -> Self {
        Self { shards, sample, queue: BgpqOptions::with_capacity_for(k, items) }
    }

    pub fn validate(&self) {
        assert!(self.shards >= 1, "need at least one shard");
        assert!(self.sample >= 1, "must sample at least one shard");
        self.queue.validate();
    }
}

impl Default for ShardedOptions {
    fn default() -> Self {
        Self { shards: 4, sample: 2, queue: BgpqOptions::default() }
    }
}

/// xorshift64*: tiny, allocation-free PRNG for shard sampling. The
/// caller owns the state (one word per worker), keeping the router
/// itself stateless across operations.
#[inline]
fn next_u64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// `S` BGPQ instances behind a relaxed, sampled router.
pub struct ShardedBgpq<K: KeyType, V: ValueType, P: Platform> {
    shards: Box<[Bgpq<K, V, P>]>,
    sample: usize,
    quality: QualityStats,
}

impl<K: KeyType, V: ValueType, P: Platform> ShardedBgpq<K, V, P> {
    /// Build from one platform instance per shard (each shard owns its
    /// lock table). `platforms.len()` must equal `opts.shards`, and
    /// each platform needs at least `opts.queue.max_nodes + 1` locks.
    pub fn with_platforms(platforms: Vec<P>, opts: ShardedOptions) -> Self {
        opts.validate();
        assert_eq!(platforms.len(), opts.shards, "one platform per shard");
        let shards: Vec<Bgpq<K, V, P>> =
            platforms.into_iter().map(|p| Bgpq::with_platform(p, opts.queue)).collect();
        Self {
            shards: shards.into_boxed_slice(),
            sample: opts.sample.clamp(1, opts.shards),
            quality: QualityStats::new(),
        }
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shards sampled per delete (after clamping to `1..=S`).
    pub fn sample(&self) -> usize {
        self.sample
    }

    /// Direct access to one shard (tests, invariant checks).
    pub fn shard(&self, i: usize) -> &Bgpq<K, V, P> {
        &self.shards[i]
    }

    /// Batch capacity `k` (identical across shards).
    pub fn node_capacity(&self) -> usize {
        self.shards[0].node_capacity()
    }

    /// Which shard an affinity token routes to.
    #[inline]
    pub fn shard_for(&self, affinity: usize) -> usize {
        affinity % self.shards.len()
    }

    /// Total items across shards. Exact at quiescence.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Relaxation counters recorded by the delete path.
    pub fn quality(&self) -> QualitySnapshot {
        self.quality.snapshot()
    }

    pub fn reset_quality(&self) {
        self.quality.reset();
    }

    /// All shards' operation counters folded into one.
    pub fn merged_stats(&self) -> OpStats {
        let total = OpStats::new();
        for s in self.shards.iter() {
            total.merge(s.stats());
        }
        total
    }

    /// Ratio of the most-loaded shard's inserted-item count to the
    /// mean (1.0 = perfectly balanced; meaningful after inserts ran).
    pub fn load_imbalance(&self) -> f64 {
        let loads: Vec<u64> =
            self.shards.iter().map(|s| s.stats().snapshot().items_inserted).collect();
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / loads.len() as f64;
        *loads.iter().max().unwrap() as f64 / mean
    }

    /// Insert a sorted-or-not batch into the shard selected by
    /// `affinity` (callers keep this sticky per worker so consecutive
    /// batches hit the same shard's partial buffer).
    pub fn insert(&self, w: &mut P::Worker, affinity: usize, items: &[Entry<K, V>]) {
        self.shards[self.shard_for(affinity)].insert(w, items);
    }

    /// Relaxed delete-min: sample `c` shards through `rng`, take up to
    /// `count` entries from the best-hinted one, steal from the other
    /// sampled shards on a miss, and finish with an exact sweep of all
    /// shards before returning 0. Appended entries are ascending (they
    /// come from a single shard's delete).
    pub fn delete_min(
        &self,
        w: &mut P::Worker,
        rng: &mut u64,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
    ) -> usize {
        let s = self.shards.len();
        let start = out.len();
        if s == 1 {
            let got = self.shards[0].delete_min(w, out, count);
            if got > 0 {
                self.quality.record_delete(&[], 0, out[start].key.to_ordered_bits(), false);
            }
            return got;
        }

        // Lock-free routing snapshot: every shard's published root-min.
        let hints: Vec<u64> = self.shards.iter().map(|q| q.min_hint_bits()).collect();

        let mut picks: Vec<usize> = Vec::with_capacity(self.sample);
        if self.sample >= s {
            picks.extend(0..s);
        } else {
            while picks.len() < self.sample {
                let i = (next_u64(rng) % s as u64) as usize;
                if !picks.contains(&i) {
                    picks.push(i);
                }
            }
        }
        picks.sort_unstable_by_key(|&i| hints[i]);

        for (attempt, &i) in picks.iter().enumerate() {
            let got = self.shards[i].delete_min(w, out, count);
            if got > 0 {
                self.quality.record_delete(
                    &hints,
                    i,
                    out[start].key.to_ordered_bits(),
                    attempt > 0,
                );
                return got;
            }
        }

        // Exact fallback: a hint of `u64::MAX` means "empty or never
        // published", so sampled misses do not prove emptiness. Attempt
        // a real delete on every shard; only a full sweep of misses
        // reports 0, which at quiescence is precise.
        self.quality.record_full_sweep();
        for i in 0..s {
            let got = self.shards[i].delete_min(w, out, count);
            if got > 0 {
                self.quality.record_delete(&hints, i, out[start].key.to_ordered_bits(), true);
                return got;
            }
        }
        0
    }

    /// Remove every item (shard by shard; the concatenation is sorted
    /// per shard, not globally). Returns the number drained.
    pub fn drain(&self, w: &mut P::Worker, out: &mut Vec<Entry<K, V>>) -> usize {
        self.shards.iter().map(|s| s.drain(w, out)).sum()
    }

    /// Discard every item. Returns the number discarded.
    pub fn clear(&self, w: &mut P::Worker) -> usize {
        self.shards.iter().map(|s| s.clear(w)).sum()
    }

    /// Check every shard's heap invariants (quiescent callers only).
    /// Returns the total item count.
    pub fn check_invariants(&self) -> usize {
        self.shards.iter().map(|s| s.check_invariants()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq_runtime::{CpuPlatform, CpuWorker};

    fn sharded(s: usize, c: usize, k: usize) -> ShardedBgpq<u32, u32, CpuPlatform> {
        let queue = BgpqOptions { node_capacity: k, max_nodes: 256, ..Default::default() };
        let platforms = (0..s).map(|_| CpuPlatform::new(queue.max_nodes + 1)).collect();
        ShardedBgpq::with_platforms(platforms, ShardedOptions::new(s, c, queue))
    }

    #[test]
    fn routes_inserts_by_affinity() {
        let q = sharded(4, 2, 8);
        let mut w = CpuWorker;
        for a in 0..8usize {
            q.insert(&mut w, a, &[Entry::new(a as u32, 0)]);
        }
        // affinity a and a+4 land on the same shard.
        for i in 0..4 {
            assert_eq!(q.shard(i).len(), 2, "shard {i}");
        }
        assert_eq!(q.len(), 8);
    }

    #[test]
    fn drains_exactly_across_shards() {
        let q = sharded(3, 1, 4);
        let mut w = CpuWorker;
        let mut rng = 7u64;
        for i in 0..60u32 {
            q.insert(&mut w, (i % 3) as usize, &[Entry::new(i, i)]);
        }
        let mut out = Vec::new();
        let mut got = 0;
        loop {
            let n = q.delete_min(&mut w, &mut rng, &mut out, 4);
            if n == 0 {
                break;
            }
            got += n;
        }
        assert_eq!(got, 60, "exact sweep must drain every shard");
        assert!(q.is_empty());
        let mut keys: Vec<u32> = out.iter().map(|e| e.key).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..60).collect::<Vec<_>>());
        assert_eq!(q.check_invariants(), 0);
    }

    #[test]
    fn single_shard_is_strict() {
        let q = sharded(1, 1, 4);
        let mut w = CpuWorker;
        let mut rng = 3u64;
        q.insert(&mut w, 0, &[Entry::new(9u32, 0), Entry::new(2, 0), Entry::new(5, 0)]);
        let mut out = Vec::new();
        assert_eq!(q.delete_min(&mut w, &mut rng, &mut out, 4), 3);
        assert_eq!(out.iter().map(|e| e.key).collect::<Vec<_>>(), vec![2, 5, 9]);
        assert_eq!(q.quality().rank_error_sum, 0);
    }

    #[test]
    fn sampled_delete_prefers_best_hint() {
        let q = sharded(2, 2, 4);
        let mut w = CpuWorker;
        let mut rng = 1u64;
        q.insert(&mut w, 0, &[Entry::new(100u32, 0)]);
        q.insert(&mut w, 1, &[Entry::new(5u32, 0)]);
        let mut out = Vec::new();
        // c == S: both hints visible, must take the smaller minimum.
        assert_eq!(q.delete_min(&mut w, &mut rng, &mut out, 1), 1);
        assert_eq!(out[0].key, 5);
        assert_eq!(q.quality().rank_error_sum, 0, "c = S never skips a smaller shard");
    }

    #[test]
    fn merged_stats_fold_all_shards() {
        let q = sharded(4, 2, 8);
        let mut w = CpuWorker;
        for a in 0..4usize {
            q.insert(&mut w, a, &[Entry::new(1u32, 0), Entry::new(2, 0)]);
        }
        let total = q.merged_stats().snapshot();
        assert_eq!(total.inserts, 4);
        assert_eq!(total.items_inserted, 8);
        assert!((q.load_imbalance() - 1.0).abs() < 1e-12, "even affinity = balanced");
    }
}
