//! Property tests for the router's quarantine paths: redistribution
//! after a shard is pulled from rotation must conserve every key, and
//! no routing path — sampling, stealing, or the exact sweep — may ever
//! touch a quarantined shard again.

use bgpq::BgpqOptions;
use bgpq_runtime::{CpuPlatform, CpuWorker};
use bgpq_shard::{ShardedBgpq, ShardedOptions};
use pq_api::Entry;
use proptest::prelude::*;
use std::collections::HashMap;

fn router(shards: usize, sample: usize, k: usize) -> ShardedBgpq<u32, u32, CpuPlatform> {
    let queue = BgpqOptions { node_capacity: k, max_nodes: 1 << 9, ..Default::default() };
    let platforms = (0..shards).map(|_| CpuPlatform::new(queue.max_nodes + 1)).collect();
    ShardedBgpq::with_platforms(platforms, ShardedOptions::new(shards, sample, queue))
}

fn multiset(keys: impl IntoIterator<Item = u32>) -> HashMap<u32, usize> {
    let mut m = HashMap::new();
    for k in keys {
        *m.entry(k).or_default() += 1;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Quarantine a shard between two insert phases. Every key must be
    /// accounted for: keys the router can still reach (deleted through
    /// it) plus keys stranded in the quarantined shard (recovered by a
    /// direct drain) must together equal exactly the inserted multiset —
    /// redistribution loses nothing and fabricates nothing.
    #[test]
    fn quarantine_redistribution_conserves_every_key(
        (shards, sample) in (2usize..=5).prop_flat_map(|s| (Just(s), 1usize..=s)),
        first in prop::collection::vec(0u32..1000, 0..120),
        second in prop::collection::vec(0u32..1000, 0..120),
        victim_pick in any::<prop::sample::Index>(),
        seed in 1u64..u64::MAX,
    ) {
        let q = router(shards, sample, 8);
        let mut w = CpuWorker::new();
        for (i, chunk) in first.chunks(8).enumerate() {
            let items: Vec<Entry<u32, u32>> = chunk.iter().map(|&k| Entry::new(k, k)).collect();
            q.insert(&mut w, i, &items);
        }

        let victim = victim_pick.index(shards);
        q.quarantine(victim);
        prop_assert!(q.is_quarantined(victim));
        prop_assert_eq!(q.quarantined_count(), 1);

        // Phase 2 routes around the victim — including batches whose
        // sticky affinity points straight at it.
        let victim_before = q.shard(victim).stats().snapshot().items_inserted;
        for (i, chunk) in second.chunks(8).enumerate() {
            let items: Vec<Entry<u32, u32>> = chunk.iter().map(|&k| Entry::new(k, k)).collect();
            let affinity = if i % 2 == 0 { victim } else { i };
            prop_assert!(q.try_insert(&mut w, affinity, &items).is_ok());
        }
        prop_assert_eq!(
            q.shard(victim).stats().snapshot().items_inserted,
            victim_before,
            "no insert may land on a quarantined shard"
        );

        // Drain through the router, then recover the stranded keys.
        let mut rng = seed;
        let mut routed: Vec<Entry<u32, u32>> = Vec::new();
        loop {
            let before = routed.len();
            if q.delete_min(&mut w, &mut rng, &mut routed, 8) == 0 {
                prop_assert_eq!(routed.len(), before);
                break;
            }
        }
        prop_assert!(q.is_empty(), "router emptiness is exact over live shards");
        let mut stranded: Vec<Entry<u32, u32>> = Vec::new();
        q.shard(victim).drain(&mut w, &mut stranded);

        let inserted = multiset(first.iter().chain(second.iter()).copied());
        let recovered =
            multiset(routed.iter().chain(stranded.iter()).map(|e| e.key));
        prop_assert_eq!(recovered, inserted, "every key deleted or stranded, none invented");
    }

    /// After quarantine, no delete — sampled hit, steal, or the exact
    /// full sweep on an empty router — may perform an operation on the
    /// quarantined shard, and `len` must stop counting it.
    #[test]
    fn sweeps_and_samples_never_observe_a_quarantined_shard(
        (shards, sample) in (2usize..=5).prop_flat_map(|s| (Just(s), 1usize..=s)),
        keys in prop::collection::vec(0u32..1000, 1..100),
        victim_pick in any::<prop::sample::Index>(),
        seed in 1u64..u64::MAX,
    ) {
        let q = router(shards, sample, 8);
        let mut w = CpuWorker::new();
        for (i, chunk) in keys.chunks(8).enumerate() {
            let items: Vec<Entry<u32, u32>> = chunk.iter().map(|&k| Entry::new(k, k)).collect();
            q.insert(&mut w, i, &items);
        }
        let victim = victim_pick.index(shards);
        q.quarantine(victim);

        let frozen = q.shard(victim).stats().snapshot();
        let stranded_len = q.shard(victim).len();
        prop_assert_eq!(
            q.len(),
            (0..shards).filter(|&i| i != victim).map(|i| q.shard(i).len()).sum::<usize>(),
            "len must exclude the quarantined shard"
        );

        // Drain to emptiness and then keep deleting: the trailing
        // misses force exact full sweeps over the live set.
        let mut rng = seed;
        let mut out = Vec::new();
        while q.delete_min(&mut w, &mut rng, &mut out, 8) != 0 {}
        let sweeps_before = q.quality().full_sweeps;
        for _ in 0..5 {
            prop_assert_eq!(q.delete_min(&mut w, &mut rng, &mut out, 8), 0);
        }
        // With >= 2 live shards every miss ends in an exact sweep (a
        // single live shard takes a direct fast path that needs none).
        if shards >= 3 {
            prop_assert!(q.quality().full_sweeps >= sweeps_before + 5, "misses must sweep");
        }

        let after = q.shard(victim).stats().snapshot();
        prop_assert_eq!(after.delete_mins, frozen.delete_mins, "no delete touched the victim");
        prop_assert_eq!(after.items_deleted, frozen.items_deleted);
        prop_assert_eq!(after.lock_acquisitions, frozen.lock_acquisitions,
            "sweeps must not even lock a quarantined shard");
        prop_assert_eq!(q.shard(victim).len(), stranded_len, "stranded keys stay put");
    }
}
