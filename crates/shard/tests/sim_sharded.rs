//! The sharded router on the virtual-time GPU simulator: one shard per
//! modeled GPU partition, deterministic interleavings, conservation
//! and invariants under concurrent blocks.

use bgpq::BgpqOptions;
use bgpq_runtime::SimPlatform;
use bgpq_shard::{ShardedBgpq, ShardedOptions};
use gpu_sim::{launch, GpuConfig};
use pq_api::Entry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

type SimSharded = ShardedBgpq<u32, u32, SimPlatform>;

fn sim_sharded(
    sched: &std::sync::Arc<gpu_sim::Scheduler>,
    cfg: &GpuConfig,
    opts: ShardedOptions,
) -> SimSharded {
    let platforms = (0..opts.shards)
        .map(|_| SimPlatform::new(sched, opts.queue.max_nodes + 1, cfg.cost, cfg.block_dim))
        .collect();
    ShardedBgpq::with_platforms(platforms, opts)
}

/// Each block feeds its sticky shard and pops via sampling; the run
/// must conserve the multiset and keep every shard's invariants.
#[test]
fn sim_sharded_mixed_workload_conserves() {
    let cfg = GpuConfig::new(8, 128);
    let k = 8usize;
    let opts = ShardedOptions::new(
        4,
        2,
        BgpqOptions { node_capacity: k, max_nodes: 4096, ..Default::default() },
    );
    let inserted = std::sync::atomic::AtomicU64::new(0);
    let deleted = std::sync::atomic::AtomicU64::new(0);
    let (report, q) = launch(
        cfg,
        |sched| sim_sharded(sched, &cfg, opts),
        |ctx, q: &SimSharded| {
            let bid = ctx.block_id();
            let mut rng = StdRng::seed_from_u64(0xBEEF ^ bid as u64);
            let mut sample_rng = 0x5EED_0000 + bid as u64;
            let mut out = Vec::new();
            for _ in 0..40 {
                if rng.gen_bool(0.6) {
                    let n = rng.gen_range(1..=k);
                    let items: Vec<Entry<u32, u32>> =
                        (0..n).map(|_| Entry::new(rng.gen_range(0..1 << 30), bid as u32)).collect();
                    q.insert(ctx.worker(), bid, &items);
                    inserted.fetch_add(n as u64, std::sync::atomic::Ordering::Relaxed);
                } else {
                    out.clear();
                    let got = q.delete_min(ctx.worker(), &mut sample_rng, &mut out, k);
                    deleted.fetch_add(got as u64, std::sync::atomic::Ordering::Relaxed);
                }
            }
        },
    );
    assert!(report.makespan_cycles > 0);
    let ins = inserted.load(std::sync::atomic::Ordering::Relaxed);
    let del = deleted.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(q.len() as u64 + del, ins, "sharding must not lose or duplicate keys");
    assert_eq!(q.check_invariants(), q.len());
    if del > 0 {
        assert!(q.quality().deletes > 0, "successful deletes must be recorded");
    }
}

/// Same seed → same virtual schedule, even through the sampled router.
#[test]
fn sim_sharded_runs_are_deterministic() {
    let run = || {
        let cfg = GpuConfig::new(6, 64);
        let opts = ShardedOptions::new(
            3,
            2,
            BgpqOptions { node_capacity: 4, max_nodes: 2048, ..Default::default() },
        );
        let (report, q) = launch(
            cfg,
            |sched| sim_sharded(sched, &cfg, opts),
            |ctx, q: &SimSharded| {
                let bid = ctx.block_id();
                let mut sample_rng = 1 + bid as u64;
                let mut out = Vec::new();
                for i in 0..30u32 {
                    q.insert(ctx.worker(), bid, &[Entry::new(i * 8 + bid as u32, 0)]);
                    out.clear();
                    q.delete_min(ctx.worker(), &mut sample_rng, &mut out, 1);
                }
            },
        );
        (report.makespan_cycles, q.len(), q.quality())
    };
    let (m1, l1, q1) = run();
    let (m2, l2, q2) = run();
    assert_eq!(m1, m2);
    assert_eq!(l1, l2);
    assert_eq!(q1, q2, "quality counters must replay identically");
}
