//! # bgpq-recover — salvage and rebuild for poisoned BGPQ instances
//!
//! PR 2's hardening made BGPQ fail-*stop*: a crashed or wedged worker
//! poisons the queue and every later call gets
//! [`pq_api::QueueError::Poisoned`]. That protects invariants but
//! strands every settled key inside node storage. The batched-heap
//! layout makes those keys salvageable — every committed key lives in
//! an `AVAIL` node (or the root/partial buffer), and node states are
//! kept accurate between fault points — so "poisoned" does not have to
//! mean "lost".
//!
//! This crate closes the loop from fault to restored service:
//!
//! 1. [`salvage`] takes exclusive ownership of a poisoned (or merely
//!    retired) [`CpuBgpq`], force-resets its lock words, walks node
//!    storage, and resets the queue to a fresh empty state — returning
//!    the recovered entries plus a [`SalvageReport`] with exact
//!    accounting.
//! 2. [`salvage_rebuild`] additionally re-inserts the recovered
//!    entries, handing back a queue that is *serving* again.
//!
//! The shard router (`bgpq-shard`) drives these from its circuit
//! breaker to re-admit quarantined shards; the `recover` bench bin
//! measures MTTR and keys-lost with them.
//!
//! ## What is and is not guaranteed
//!
//! * **No silent loss.** Every key the queue accepted and did not
//!   return is either in the salvage output or counted in
//!   [`SalvageReport::keys_lost`].
//! * **No invention.** Salvage never fabricates or duplicates a key:
//!   the recovered multiset is a subset of what was inserted minus
//!   what was deleted.
//! * **Loss accounting is conservative.** `keys_lost` can over-report:
//!   an insert that crashed *before* linearizing already bumped the
//!   item count even though its caller kept the batch (and got `Err`).
//!   Those keys are double-covered — owned by the caller *and*
//!   reported lost — never silently dropped.
//! * **Quiescence is the caller's job.** Salvage must run with no
//!   worker inside (or able to enter) the queue. A poisoned queue
//!   reaches that state naturally — every entry point fast-fails — but
//!   the caller must also wait out workers that entered before the
//!   poison landed.

use bgpq::{Bgpq, CpuBgpq, SalvageOutcome};
use bgpq_runtime::{CpuPlatform, CpuWorker};
use pq_api::{Entry, KeyType, ValueType};

/// Exact accounting of one salvage pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SalvageReport {
    /// Keys walked out of node storage and returned to the caller.
    pub keys_recovered: usize,
    /// Keys the queue's accepted-minus-returned count promised but the
    /// walk could not find: confirmed or conservatively presumed lost
    /// to in-flight batches (see crate docs on over-reporting).
    pub keys_lost: usize,
    /// The accepted-minus-returned count at salvage time —
    /// `keys_recovered + keys_lost` by construction.
    pub keys_expected: usize,
    /// Node slots skipped in `TARGET` state (reserved by an in-flight
    /// insert that died before filling them).
    pub nodes_skipped_target: usize,
    /// Node slots skipped in `MARKED` state (a §4.3 collaboration was
    /// in flight when the worker died).
    pub nodes_skipped_marked: usize,
    /// Whether the queue was poisoned when salvage began (`false`
    /// means a healthy drain-and-reset).
    pub was_poisoned: bool,
}

impl SalvageReport {
    /// Build a report from a heap's raw [`SalvageOutcome`]. Public so
    /// non-CPU salvagers (the schedule explorer's simulator-platform
    /// salvage hook) can produce the same accounting the shard router's
    /// breaker consumes.
    pub fn from_outcome(o: SalvageOutcome) -> Self {
        Self {
            keys_recovered: o.recovered,
            keys_lost: o.lost(),
            keys_expected: o.expected,
            nodes_skipped_target: o.skipped_target,
            nodes_skipped_marked: o.skipped_marked,
            was_poisoned: o.was_poisoned,
        }
    }

    /// The conservation identity every salvage upholds:
    /// `recovered + lost == expected`. (Trivially true by construction
    /// here; drills assert it against independently tracked traffic.)
    pub fn conserves(&self) -> bool {
        self.keys_recovered + self.keys_lost == self.keys_expected
    }
}

/// Salvage a [`CpuBgpq`]: force-reset abandoned lock words, walk every
/// settled key out of node storage into `out`, and reset the queue to
/// a fresh, un-poisoned, empty state.
///
/// Takes `&mut` — exclusive ownership is the point: nothing else can
/// hold `&CpuBgpq` aliases into the salvage window unless the caller
/// arranged outer synchronization (as the shard router's breaker
/// does, with its own quiescence protocol). See the crate docs for
/// the quiescence contract.
pub fn salvage<K: KeyType, V: ValueType>(
    q: &mut CpuBgpq<K, V>,
    out: &mut Vec<Entry<K, V>>,
) -> SalvageReport {
    let mut w = CpuWorker::new();
    salvage_shared(&*q, &mut w, out)
}

/// [`salvage`] for callers that cannot hand over `&mut` — e.g. the
/// shard router, whose shards live in a shared slice — and provide
/// exclusivity by protocol instead (breaker recovery lock +
/// in-flight-operation quiescence). Prefer [`salvage`] where the type
/// system can enforce exclusivity.
pub fn salvage_shared<K: KeyType, V: ValueType>(
    q: &CpuBgpq<K, V>,
    w: &mut CpuWorker,
    out: &mut Vec<Entry<K, V>>,
) -> SalvageReport {
    salvage_heap(q.inner(), w, out)
}

/// Lowest-level entry point: salvage any CPU-platform heap.
pub fn salvage_heap<K: KeyType, V: ValueType>(
    q: &Bgpq<K, V, CpuPlatform>,
    w: &mut CpuWorker,
    out: &mut Vec<Entry<K, V>>,
) -> SalvageReport {
    // Locks first: a crashed worker's abandoned locks would wedge any
    // later operation on the reset queue. Sound under the quiescence
    // contract (no live holder exists).
    q.platform().force_reset_locks();
    SalvageReport::from_outcome(q.salvage_reset(w, out))
}

/// Salvage `q` and immediately rebuild it from its own recovered keys:
/// after this returns, `q` is un-poisoned and holds exactly the
/// recovered multiset again. Returns the report.
///
/// Re-insertion uses the queue's own batched insert; entries that no
/// longer fit (they always fit — capacity did not shrink — but the
/// path is defensive) are appended to `overflow` instead of dropped.
pub fn salvage_rebuild<K: KeyType, V: ValueType>(
    q: &mut CpuBgpq<K, V>,
    overflow: &mut Vec<Entry<K, V>>,
) -> SalvageReport {
    let mut recovered = Vec::new();
    let report = salvage(q, &mut recovered);
    let mut w = CpuWorker::new();
    reinsert(q.inner(), &mut w, recovered, overflow);
    report
}

/// Re-insert `entries` into a freshly reset heap, spilling anything
/// refused (`Full`, or a re-poison mid-rebuild) into `overflow`.
pub fn reinsert<K: KeyType, V: ValueType>(
    q: &Bgpq<K, V, CpuPlatform>,
    w: &mut CpuWorker,
    entries: Vec<Entry<K, V>>,
    overflow: &mut Vec<Entry<K, V>>,
) {
    let k = q.node_capacity();
    for chunk in entries.chunks(k) {
        if q.try_insert(w, chunk).is_err() {
            overflow.extend_from_slice(chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpq::BgpqOptions;
    use pq_api::BatchPriorityQueue;

    fn queue(k: usize, nodes: usize) -> CpuBgpq<u32, u32> {
        CpuBgpq::new(BgpqOptions { node_capacity: k, max_nodes: nodes, ..Default::default() })
    }

    #[test]
    fn salvage_returns_exact_multiset_and_resets() {
        let mut q = queue(8, 64);
        let keys: Vec<u32> = (0..100).rev().collect();
        for chunk in keys.chunks(5) {
            q.insert_batch(&chunk.iter().map(|&k| Entry::new(k, k * 2)).collect::<Vec<_>>());
        }
        let mut out = Vec::new();
        let report = salvage(&mut q, &mut out);
        assert!(report.conserves());
        assert_eq!(report.keys_recovered, 100);
        assert_eq!(report.keys_lost, 0);
        assert!(!report.was_poisoned);
        let mut got: Vec<u32> = out.iter().map(|e| e.key).collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert!(out.iter().all(|e| e.value == e.key * 2), "values ride along");
        assert_eq!(q.len(), 0);
        q.inner().check_invariants();
    }

    #[test]
    fn rebuild_restores_service_with_the_same_contents() {
        let mut q = queue(4, 32);
        for i in 0..40u32 {
            q.insert_batch(&[Entry::new(i, i)]);
        }
        let mut overflow = Vec::new();
        let report = salvage_rebuild(&mut q, &mut overflow);
        assert_eq!(report.keys_recovered, 40);
        assert!(overflow.is_empty(), "capacity did not shrink; nothing spills");
        assert_eq!(q.len(), 40);
        let mut out = Vec::new();
        assert_eq!(q.delete_min_batch(&mut out, 4), 4);
        assert_eq!(out.iter().map(|e| e.key).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(q.inner().stats().snapshot().salvages, 1);
    }

    #[test]
    fn empty_queue_salvages_to_an_empty_report() {
        let mut q = queue(4, 16);
        let mut out = Vec::new();
        let report = salvage(&mut q, &mut out);
        assert_eq!(report, SalvageReport { was_poisoned: false, ..Default::default() });
        assert!(out.is_empty());
        q.inner().check_invariants();
    }
}
