//! Seeded, deterministic fault injection for crash drills.
//!
//! A [`FaultPlan`] is attached to a platform ([`crate::CpuPlatform`] or
//! [`crate::SimPlatform`]) and consulted at named [`InjectionPoint`]s
//! that the heap code threads through its critical sections. Each rule
//! fires exactly once, on the *nth* process-wide hit of its point, so a
//! drill is reproducible: the same plan against the same (deterministic)
//! schedule faults the same operation at the same step. On the
//! simulator, where the schedule itself is deterministic per seed, this
//! pins a fault to an exact virtual time.
//!
//! Three actions cover the failure model (DESIGN.md "Failure model"):
//!
//! * [`FaultAction::Panic`] — the worker dies mid-critical-section,
//!   exercising the RAII lock-chain release and queue poisoning;
//! * [`FaultAction::Stall`] — the worker freezes long enough to trip
//!   lock watchdogs and bounded spins, then resumes;
//! * [`FaultAction::Delay`] — a short wobble that perturbs the schedule
//!   without tripping any bound (recovery must be a no-op).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Named instants inside the heap's critical sections where a fault can
/// be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectionPoint {
    /// Immediately before a lock acquisition (no lock gained yet).
    PreLockAcquire,
    /// Immediately after a lock acquisition (lock held, nothing done).
    PostLockAcquire,
    /// Immediately before a lock release (protected work finished).
    PreLockRelease,
    /// Between hand-over-hand steps of an insert heapify (one or two
    /// path locks held, batch in flight).
    MidInsertHeapify,
    /// Between hand-over-hand steps of a delete heapify (one to three
    /// node locks held, result set possibly uncommitted).
    MidDeleteHeapify,
    /// Inside the DELETEMIN wait spin (MARKED collaboration spin, or
    /// the no-collaboration TARGET wait) — root lock held.
    MarkedSpin,
    /// Inside a salvage walk over poisoned node storage (recovery
    /// drills: a second failure while recovery itself is running).
    /// Deliberately the *last* variant: [`FaultPlan::seeded`] draws
    /// only the six heap points, so existing seeded schedules are
    /// unchanged and recovery faults are always explicit rules.
    SalvageWalk,
}

impl InjectionPoint {
    /// Every registered point, for drills that must cover all of them.
    pub const ALL: [InjectionPoint; 7] = [
        InjectionPoint::PreLockAcquire,
        InjectionPoint::PostLockAcquire,
        InjectionPoint::PreLockRelease,
        InjectionPoint::MidInsertHeapify,
        InjectionPoint::MidDeleteHeapify,
        InjectionPoint::MarkedSpin,
        InjectionPoint::SalvageWalk,
    ];

    /// Dense index (for the per-point hit counters).
    pub fn index(self) -> usize {
        match self {
            InjectionPoint::PreLockAcquire => 0,
            InjectionPoint::PostLockAcquire => 1,
            InjectionPoint::PreLockRelease => 2,
            InjectionPoint::MidInsertHeapify => 3,
            InjectionPoint::MidDeleteHeapify => 4,
            InjectionPoint::MarkedSpin => 5,
            InjectionPoint::SalvageWalk => 6,
        }
    }
}

/// What happens when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic the worker (simulated crash mid-critical-section).
    Panic,
    /// Freeze the worker for `units` platform time units (microseconds
    /// on `CpuPlatform`, virtual cycles on `SimPlatform`) — long enough
    /// to trip watchdogs, after which the worker resumes.
    Stall { units: u64 },
    /// A short schedule wobble of `units` platform time units that must
    /// stay under every bound (spin-loop iterations on `CpuPlatform`,
    /// virtual cycles on `SimPlatform`).
    Delay { units: u64 },
}

/// One fault: fire `action` on the `nth` process-wide hit of `point`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    pub point: InjectionPoint,
    /// 1-based hit ordinal across all workers sharing the plan.
    pub nth: u64,
    pub action: FaultAction,
}

/// A deterministic schedule of one-shot faults, shared by every worker
/// of one platform. Hit counting is global (one atomic per point), so
/// "the 7th MidInsertHeapify" is well-defined even with many workers —
/// on the simulator it is the *same* step every run.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    fired: Vec<AtomicBool>,
    hits: [AtomicU64; InjectionPoint::ALL.len()],
}

impl FaultPlan {
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: add one rule.
    pub fn with_rule(mut self, point: InjectionPoint, nth: u64, action: FaultAction) -> Self {
        assert!(nth >= 1, "hit ordinals are 1-based");
        self.rules.push(FaultRule { point, nth, action });
        self.fired.push(AtomicBool::new(false));
        self
    }

    /// Generate `count` pseudo-random rules from `seed` (splitmix64):
    /// uniformly chosen points, hit ordinals in `1..=max_nth`, and a
    /// mix of panic / stall / delay actions. Same seed ⇒ same plan.
    pub fn seeded(seed: u64, count: usize, max_nth: u64) -> Self {
        assert!(max_nth >= 1);
        let mut plan = Self::new();
        let mut z = seed;
        let mut next = move || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        for _ in 0..count {
            // Seeded plans draw only the six heap points — never
            // `SalvageWalk` — so seeded soak schedules stay stable and
            // recovery-time faults are always explicit rules.
            let point = InjectionPoint::ALL[(next() % 6) as usize];
            let nth = next() % max_nth + 1;
            let action = match next() % 3 {
                0 => FaultAction::Panic,
                1 => FaultAction::Stall { units: next() % 5_000 + 500 },
                _ => FaultAction::Delay { units: next() % 200 + 1 },
            };
            plan = plan.with_rule(point, nth, action);
        }
        plan
    }

    /// Build a plan from an explicit rule list (e.g. one deserialized
    /// from a `.sched` artifact).
    pub fn from_rules(rules: &[FaultRule]) -> Self {
        let mut plan = Self::new();
        for r in rules {
            plan = plan.with_rule(r.point, r.nth, r.action);
        }
        plan
    }

    /// Compose several plans into one (fresh hit counters, nothing
    /// fired): the rule lists are concatenated in argument order. Lets a
    /// crash drill be layered onto an explored schedule — e.g. a seeded
    /// plan plus a hand-pinned rule from a shrunk counterexample.
    pub fn compose<'a>(plans: impl IntoIterator<Item = &'a FaultPlan>) -> Self {
        let mut out = Self::new();
        for plan in plans {
            for r in &plan.rules {
                out = out.with_rule(r.point, r.nth, r.action);
            }
        }
        out
    }

    /// The configured rules.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Called by platforms at each injection point: counts the hit and
    /// returns the action of the first unfired rule matching this exact
    /// hit, if any. An empty plan is inert (no counting, no faults).
    pub fn check(&self, point: InjectionPoint) -> Option<FaultAction> {
        if self.rules.is_empty() {
            return None;
        }
        let n = self.hits[point.index()].fetch_add(1, Ordering::Relaxed) + 1;
        for (i, r) in self.rules.iter().enumerate() {
            if r.point == point && r.nth == n && !self.fired[i].swap(true, Ordering::Relaxed) {
                return Some(r.action);
            }
        }
        None
    }

    /// Hits recorded at `point` so far.
    pub fn hits(&self, point: InjectionPoint) -> u64 {
        self.hits[point.index()].load(Ordering::Relaxed)
    }

    /// How many rules have fired.
    pub fn fired_count(&self) -> usize {
        self.fired.iter().filter(|f| f.load(Ordering::Relaxed)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_fires_exactly_once_on_the_nth_hit() {
        let plan =
            FaultPlan::new().with_rule(InjectionPoint::MidInsertHeapify, 3, FaultAction::Panic);
        assert_eq!(plan.check(InjectionPoint::MidInsertHeapify), None);
        assert_eq!(plan.check(InjectionPoint::MidInsertHeapify), None);
        assert_eq!(plan.check(InjectionPoint::MidInsertHeapify), Some(FaultAction::Panic));
        assert_eq!(plan.check(InjectionPoint::MidInsertHeapify), None);
        assert_eq!(plan.hits(InjectionPoint::MidInsertHeapify), 4);
        assert_eq!(plan.fired_count(), 1);
    }

    #[test]
    fn points_count_independently() {
        let plan = FaultPlan::new()
            .with_rule(InjectionPoint::MarkedSpin, 1, FaultAction::Stall { units: 10 })
            .with_rule(InjectionPoint::PreLockRelease, 2, FaultAction::Delay { units: 5 });
        assert_eq!(plan.check(InjectionPoint::PreLockRelease), None);
        assert_eq!(plan.check(InjectionPoint::MarkedSpin), Some(FaultAction::Stall { units: 10 }));
        assert_eq!(
            plan.check(InjectionPoint::PreLockRelease),
            Some(FaultAction::Delay { units: 5 })
        );
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::new();
        for p in InjectionPoint::ALL {
            assert_eq!(plan.check(p), None);
            assert_eq!(plan.hits(p), 0, "inert plan must not even count");
        }
    }

    #[test]
    fn seeded_plans_are_reproducible_and_bounded() {
        let a = FaultPlan::seeded(42, 8, 100);
        let b = FaultPlan::seeded(42, 8, 100);
        assert_eq!(a.rules(), b.rules());
        assert_eq!(a.rules().len(), 8);
        for r in a.rules() {
            assert!(r.nth >= 1 && r.nth <= 100);
        }
        let c = FaultPlan::seeded(43, 8, 100);
        assert_ne!(a.rules(), c.rules(), "different seeds, different plans");
    }

    #[test]
    fn seeded_plans_never_draw_the_salvage_point() {
        for seed in 0..64 {
            for r in FaultPlan::seeded(seed, 16, 50).rules() {
                assert_ne!(r.point, InjectionPoint::SalvageWalk, "seed {seed}");
            }
        }
    }

    #[test]
    fn compose_concatenates_rules_with_fresh_state() {
        let a = FaultPlan::new().with_rule(InjectionPoint::MarkedSpin, 1, FaultAction::Panic);
        // Fire `a`'s rule so composing provably resets fired/hit state.
        assert_eq!(a.check(InjectionPoint::MarkedSpin), Some(FaultAction::Panic));
        let b = FaultPlan::new().with_rule(
            InjectionPoint::MidDeleteHeapify,
            2,
            FaultAction::Delay { units: 7 },
        );
        let c = FaultPlan::compose([&a, &b]);
        assert_eq!(c.rules().len(), 2);
        assert_eq!(c.fired_count(), 0);
        assert_eq!(c.hits(InjectionPoint::MarkedSpin), 0);
        assert_eq!(c.check(InjectionPoint::MarkedSpin), Some(FaultAction::Panic));
        let d = FaultPlan::from_rules(c.rules());
        assert_eq!(d.rules(), c.rules());
        assert_eq!(d.fired_count(), 0);
    }

    #[test]
    fn concurrent_hits_fire_each_rule_once() {
        let plan = std::sync::Arc::new(
            FaultPlan::new()
                .with_rule(InjectionPoint::PostLockAcquire, 50, FaultAction::Panic)
                .with_rule(InjectionPoint::PostLockAcquire, 51, FaultAction::Panic),
        );
        let fired = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let plan = plan.clone();
                let fired = &fired;
                s.spawn(move || {
                    for _ in 0..100 {
                        if plan.check(InjectionPoint::PostLockAcquire).is_some() {
                            fired.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(fired.load(Ordering::Relaxed), 2, "each rule fires exactly once");
        assert_eq!(plan.hits(InjectionPoint::PostLockAcquire), 400);
    }
}
