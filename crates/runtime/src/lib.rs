//! # bgpq-runtime — the platform abstraction BGPQ is written against
//!
//! The BGPQ algorithm (crate `bgpq`) is a single implementation of the
//! paper's pseudocode, parameterized over a [`Platform`] that provides
//! the three things a CUDA kernel gets from the device:
//!
//! 1. a table of fine-grained locks (one per heap node, §4),
//! 2. a way to account the cost of data-parallel primitives,
//! 3. a backoff primitive for the spin in the TARGET/MARKED
//!    collaboration (§4.3, footnote 2).
//!
//! Two platforms are provided:
//!
//! * [`CpuPlatform`] — real `parking_lot` locks, zero-cost accounting.
//!   Used for correctness work (linearizability histories under genuine
//!   OS-thread interleavings) and as a practical host-side queue.
//! * [`SimPlatform`] — locks and costs delegated to the `gpu-sim`
//!   virtual-time scheduler. Used to reproduce the paper's performance
//!   figures on hardware without a GPU (see DESIGN.md §2).
//!
//! Both accept failure hardening that is off by default:
//!
//! * [`FaultPlan`] — a seeded, deterministic schedule of one-shot faults
//!   (panic / stall / delay) executed at named [`InjectionPoint`]s the
//!   heap threads through its critical sections (crash drills);
//! * the CPU platform's lock watchdog ([`CpuPlatform::with_watchdog`]),
//!   which turns an acquisition blocked on a dead holder into a
//!   [`LockFailure`] with a holder/state diagnostic dump.

pub mod cpu;
pub mod fault;
pub mod platform;
pub mod sim;

pub use cpu::{with_thread_worker, worker_id, CpuPlatform, CpuWorker};
pub use fault::{FaultAction, FaultPlan, FaultRule, InjectionPoint};
pub use platform::{LockFailure, Platform};
pub use sim::SimPlatform;
