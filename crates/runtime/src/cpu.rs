//! Real-threads platform backed by `parking_lot` raw mutexes.

use crate::platform::Platform;
use parking_lot::lock_api::RawMutex as RawMutexApi;
use parking_lot::RawMutex;
use primitives::PrimitiveCost;

/// Per-thread context for [`CpuPlatform`]. Carries no state — real
/// threads need none — but keeps the worker-passing discipline uniform
/// across platforms.
#[derive(Debug, Default, Clone, Copy)]
pub struct CpuWorker;

/// A lock table of `parking_lot` raw mutexes; primitive costs are
/// ignored (the real CPU does the real work).
pub struct CpuPlatform {
    locks: Box<[RawMutex]>,
}

impl CpuPlatform {
    /// Build a platform with `n` locks.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one lock");
        Self { locks: (0..n).map(|_| RawMutex::INIT).collect() }
    }
}

impl Platform for CpuPlatform {
    type Worker = CpuWorker;

    fn num_locks(&self) -> usize {
        self.locks.len()
    }

    #[inline]
    fn lock(&self, _w: &mut CpuWorker, lock: usize) {
        self.locks[lock].lock();
    }

    #[inline]
    fn try_lock(&self, _w: &mut CpuWorker, lock: usize) -> bool {
        self.locks[lock].try_lock()
    }

    #[inline]
    fn unlock(&self, _w: &mut CpuWorker, lock: usize) {
        // SAFETY (of the locking protocol, not memory): the heap's
        // hand-over-hand discipline guarantees the calling worker holds
        // `lock`; see `Platform` docs.
        unsafe { self.locks[lock].unlock() };
    }

    #[inline]
    fn charge(&self, _w: &mut CpuWorker, _c: PrimitiveCost) {}

    #[inline]
    fn backoff(&self, _w: &mut CpuWorker) {
        // On an oversubscribed host (this repo's CI is single-core) a
        // pure spin would starve the thread we are waiting on.
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn locks_exclude_concurrent_increments() {
        let p = CpuPlatform::new(1);
        let counter = AtomicU64::new(0);
        let max_seen = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut w = CpuWorker;
                    for _ in 0..1000 {
                        p.lock(&mut w, 0);
                        let inside = counter.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(inside, Ordering::SeqCst);
                        counter.fetch_sub(1, Ordering::SeqCst);
                        p.unlock(&mut w, 0);
                    }
                });
            }
        });
        assert_eq!(max_seen.load(Ordering::SeqCst), 1, "critical section was not exclusive");
    }

    #[test]
    fn try_lock_reports_held() {
        let p = CpuPlatform::new(2);
        let mut w = CpuWorker;
        assert!(p.try_lock(&mut w, 0));
        assert!(!p.try_lock(&mut w, 0), "second try_lock on held lock must fail");
        assert!(p.try_lock(&mut w, 1), "other locks are independent");
        p.unlock(&mut w, 0);
        p.unlock(&mut w, 1);
        assert!(p.try_lock(&mut w, 0), "released lock can be re-acquired");
        p.unlock(&mut w, 0);
    }

    #[test]
    fn charge_is_free() {
        let p = CpuPlatform::new(1);
        let mut w = CpuWorker;
        p.charge(&mut w, PrimitiveCost::Sort { n: 1 << 20 });
    }
}
