//! Real-threads platform backed by `parking_lot` raw mutexes.

use crate::fault::{FaultAction, FaultPlan, InjectionPoint};
use crate::platform::{LockFailure, Platform};
use parking_lot::lock_api::RawMutex as RawMutexApi;
use parking_lot::RawMutex;
use pq_api::ScratchSlot;
use primitives::PrimitiveCost;
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-thread context for [`CpuPlatform`]. Real threads need no lock
/// state (the OS carries it), but the worker owns the [`ScratchSlot`]
/// in which queue hot paths park their per-worker arenas between
/// operations — reuse a worker across calls and the steady state
/// allocates nothing.
#[derive(Debug, Default)]
pub struct CpuWorker {
    scratch: ScratchSlot,
}

impl CpuWorker {
    pub fn new() -> Self {
        Self::default()
    }

    /// The scratch parking spot (see [`ScratchSlot`]).
    pub fn scratch_slot(&mut self) -> &mut ScratchSlot {
        &mut self.scratch
    }
}

thread_local! {
    static TL_WORKER: RefCell<CpuWorker> = RefCell::new(CpuWorker::new());
}

/// Run `f` with this thread's shared [`CpuWorker`].
///
/// Convenience wrappers whose API has no worker parameter (e.g. the
/// [`pq_api::BatchPriorityQueue`] impls) route through here so repeated
/// calls on one thread reuse the same scratch arenas instead of paying
/// a cold worker per call. Panics if re-entered on the same thread
/// (queue operations never call back into the wrapper API).
pub fn with_thread_worker<R>(f: impl FnOnce(&mut CpuWorker) -> R) -> R {
    TL_WORKER.with(|w| f(&mut w.borrow_mut()))
}

static THREAD_TICKET: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_TOKEN: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Small stable nonzero id of the calling thread, used by the watchdog's
/// holder table (0 means "free" in that table).
fn thread_token() -> usize {
    THREAD_TOKEN.with(|c| {
        let v = c.get();
        if v != 0 {
            return v;
        }
        let t = THREAD_TICKET.fetch_add(1, Ordering::Relaxed) + 1;
        c.set(t);
        t
    })
}

/// Dense zero-based id of the calling thread, stable for the thread's
/// lifetime and assigned in first-call order. The shard router uses it
/// for shard affinity and the combiner front for submission-ring lanes;
/// both want a small index suitable for `% n` striping, which
/// [`std::thread::ThreadId`] does not provide.
pub fn worker_id() -> usize {
    thread_token() - 1
}

/// A lock table of `parking_lot` raw mutexes; primitive costs are
/// ignored (the real CPU does the real work).
///
/// Optional hardening, both off by default:
///
/// * [`CpuPlatform::with_watchdog`] bounds every acquisition — on
///   timeout, [`Platform::lock_checked`] returns a [`LockFailure`]
///   carrying a diagnostic dump of the lock table (which locks are held
///   and by which worker token), and the plain [`Platform::lock`]
///   panics with the same dump. While the watchdog is armed the
///   platform tracks per-lock holder tokens.
/// * [`CpuPlatform::with_faults`] arms a [`FaultPlan`]: stalls become
///   real `thread::sleep`s (microseconds), delays become spin-loop
///   iterations, panics unwind the calling thread.
pub struct CpuPlatform {
    locks: Box<[RawMutex]>,
    /// Holder token per lock (0 = free); maintained only while the
    /// watchdog is armed, so the default lock path stays branch+store
    /// free.
    holders: Box<[AtomicUsize]>,
    watchdog: Option<Duration>,
    faults: Option<Arc<FaultPlan>>,
}

impl CpuPlatform {
    /// Build a platform with `n` locks.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one lock");
        Self {
            locks: (0..n).map(|_| RawMutex::INIT).collect(),
            holders: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            watchdog: None,
            faults: None,
        }
    }

    /// Arm the lock watchdog: acquisitions taking longer than `timeout`
    /// fail (see [`Platform::lock_checked`]) instead of blocking on a
    /// dead holder forever.
    pub fn with_watchdog(mut self, timeout: Duration) -> Self {
        assert!(timeout > Duration::ZERO, "watchdog timeout must be positive");
        self.watchdog = Some(timeout);
        self
    }

    /// Attach a fault-injection plan (crash drills).
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The armed watchdog timeout, if any.
    pub fn watchdog(&self) -> Option<Duration> {
        self.watchdog
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// Force every lock in the table back to the released state,
    /// clearing the watchdog's holder tokens.
    ///
    /// **Recovery only.** A poisoned queue can leave locks held by
    /// workers that panicked past their RAII release (e.g. a stalled
    /// thread killed by its driver) — nothing will ever unlock them.
    /// Salvage (`bgpq-recover`) calls this *after* establishing
    /// quiescence: the caller must guarantee no worker is inside or
    /// will enter a critical section on this platform, otherwise a
    /// still-running holder's mutual exclusion is silently destroyed.
    /// Sound here because the vendored `parking_lot` raw mutex is a
    /// plain atomic flag with no owner bookkeeping or parked waiters —
    /// releasing from a non-owner thread is well-defined.
    pub fn force_reset_locks(&self) {
        for (lock, holder) in self.locks.iter().zip(self.holders.iter()) {
            // Acquire if free so the unlock below is always paired;
            // if held (by a dead worker, per the contract) the unlock
            // alone performs the forced release.
            let _ = lock.try_lock();
            unsafe { lock.unlock() };
            holder.store(0, Ordering::Relaxed);
        }
    }

    /// Diagnostic dump for a watchdog report: the contended lock's
    /// holder token plus every currently held lock (capped at 16).
    fn dump_lock_table(&self, waiting_for: usize, timeout: Duration) -> String {
        use std::fmt::Write;
        let mut s = format!(
            "lock {waiting_for} not granted within {timeout:?} (holder token {}); held:",
            self.holders[waiting_for].load(Ordering::Relaxed)
        );
        let mut listed = 0;
        for (i, h) in self.holders.iter().enumerate() {
            let t = h.load(Ordering::Relaxed);
            if t != 0 {
                if listed == 16 {
                    s.push_str(" …");
                    break;
                }
                let _ = write!(s, " {i}(by {t})");
                listed += 1;
            }
        }
        if listed == 0 {
            s.push_str(" (none)");
        }
        s
    }
}

impl Platform for CpuPlatform {
    type Worker = CpuWorker;

    fn num_locks(&self) -> usize {
        self.locks.len()
    }

    #[inline]
    fn scratch_slot<'a>(&self, w: &'a mut CpuWorker) -> &'a mut ScratchSlot {
        &mut w.scratch
    }

    #[inline]
    fn lock(&self, w: &mut CpuWorker, lock: usize) {
        if self.watchdog.is_some() {
            if let Err(f) = self.lock_checked(w, lock) {
                panic!("CpuPlatform watchdog: {}", f.detail);
            }
        } else {
            self.locks[lock].lock();
        }
    }

    #[inline]
    fn try_lock(&self, _w: &mut CpuWorker, lock: usize) -> bool {
        let got = self.locks[lock].try_lock();
        if got && self.watchdog.is_some() {
            self.holders[lock].store(thread_token(), Ordering::Relaxed);
        }
        got
    }

    #[inline]
    fn unlock(&self, _w: &mut CpuWorker, lock: usize) {
        if self.watchdog.is_some() {
            self.holders[lock].store(0, Ordering::Relaxed);
        }
        // SAFETY (of the locking protocol, not memory): the heap's
        // hand-over-hand discipline guarantees the calling worker holds
        // `lock`; see `Platform` docs.
        unsafe { self.locks[lock].unlock() };
    }

    #[inline]
    fn charge(&self, _w: &mut CpuWorker, _c: PrimitiveCost) {}

    #[inline]
    fn backoff(&self, _w: &mut CpuWorker) {
        // On an oversubscribed host (this repo's CI is single-core) a
        // pure spin would starve the thread we are waiting on.
        std::thread::yield_now();
    }

    fn backoff_long(&self, _w: &mut CpuWorker) {
        std::thread::sleep(Duration::from_micros(50));
    }

    fn inject(&self, _w: &mut CpuWorker, point: InjectionPoint) {
        let Some(plan) = self.faults.as_ref() else { return };
        match plan.check(point) {
            None => {}
            Some(FaultAction::Panic) => panic!("injected fault: panic at {point:?}"),
            Some(FaultAction::Stall { units }) => {
                // One unit = 1µs of real wall-clock freeze, capped so a
                // bad plan cannot hang a test run.
                std::thread::sleep(Duration::from_micros(units.min(500_000)));
            }
            Some(FaultAction::Delay { units }) => {
                for _ in 0..units {
                    std::hint::spin_loop();
                }
            }
        }
    }

    fn lock_checked(&self, _w: &mut CpuWorker, lock: usize) -> Result<(), LockFailure> {
        let Some(timeout) = self.watchdog else {
            self.locks[lock].lock();
            return Ok(());
        };
        if self.locks[lock].try_lock() {
            self.holders[lock].store(thread_token(), Ordering::Relaxed);
            return Ok(());
        }
        let deadline = Instant::now() + timeout;
        let mut spins = 0u32;
        loop {
            if self.locks[lock].try_lock() {
                self.holders[lock].store(thread_token(), Ordering::Relaxed);
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(LockFailure { lock, detail: self.dump_lock_table(lock, timeout) });
            }
            spins += 1;
            if spins < 128 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn locks_exclude_concurrent_increments() {
        let p = CpuPlatform::new(1);
        let counter = AtomicU64::new(0);
        let max_seen = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut w = CpuWorker::new();
                    for _ in 0..1000 {
                        p.lock(&mut w, 0);
                        let inside = counter.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(inside, Ordering::SeqCst);
                        counter.fetch_sub(1, Ordering::SeqCst);
                        p.unlock(&mut w, 0);
                    }
                });
            }
        });
        assert_eq!(max_seen.load(Ordering::SeqCst), 1, "critical section was not exclusive");
    }

    #[test]
    fn try_lock_reports_held() {
        let p = CpuPlatform::new(2);
        let mut w = CpuWorker::new();
        assert!(p.try_lock(&mut w, 0));
        assert!(!p.try_lock(&mut w, 0), "second try_lock on held lock must fail");
        assert!(p.try_lock(&mut w, 1), "other locks are independent");
        p.unlock(&mut w, 0);
        p.unlock(&mut w, 1);
        assert!(p.try_lock(&mut w, 0), "released lock can be re-acquired");
        p.unlock(&mut w, 0);
    }

    #[test]
    fn force_reset_releases_abandoned_locks() {
        let p = CpuPlatform::new(3).with_watchdog(Duration::from_millis(200));
        // A worker takes two locks and "dies" without releasing them.
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut w = CpuWorker::new();
                p.lock(&mut w, 0);
                p.lock(&mut w, 2);
            });
        });
        let mut w = CpuWorker::new();
        assert!(!p.try_lock(&mut w, 0), "lock 0 is wedged");
        p.force_reset_locks();
        assert!(p.try_lock(&mut w, 0), "forced reset frees wedged locks");
        assert!(p.try_lock(&mut w, 2));
        p.unlock(&mut w, 0);
        p.unlock(&mut w, 2);
        // Normal locking still works after a reset.
        assert!(p.lock_checked(&mut w, 1).is_ok());
        p.unlock(&mut w, 1);
    }

    #[test]
    fn charge_is_free() {
        let p = CpuPlatform::new(1);
        let mut w = CpuWorker::new();
        p.charge(&mut w, PrimitiveCost::Sort { n: 1 << 20 });
    }

    #[test]
    fn watchdog_times_out_with_diagnostics() {
        let p = CpuPlatform::new(3).with_watchdog(Duration::from_millis(30));
        let mut w = CpuWorker::new();
        p.lock(&mut w, 1);
        p.lock(&mut w, 2);
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut w2 = CpuWorker::new();
                let err = p.lock_checked(&mut w2, 1).expect_err("must time out");
                assert_eq!(err.lock, 1);
                assert!(err.detail.contains("lock 1"), "{}", err.detail);
                assert!(err.detail.contains("not granted"), "{}", err.detail);
                // The dump lists both held locks.
                assert!(err.detail.contains("2(by"), "{}", err.detail);
            });
        });
        p.unlock(&mut w, 2);
        p.unlock(&mut w, 1);
        // After release the checked path succeeds again.
        assert!(p.lock_checked(&mut w, 1).is_ok());
        p.unlock(&mut w, 1);
    }

    #[test]
    fn watchdog_plain_lock_panics_on_timeout() {
        let p = std::sync::Arc::new(CpuPlatform::new(1).with_watchdog(Duration::from_millis(20)));
        let mut w = CpuWorker::new();
        p.lock(&mut w, 0);
        let p2 = p.clone();
        let r = std::thread::spawn(move || {
            let mut w2 = CpuWorker::new();
            p2.lock(&mut w2, 0);
        })
        .join();
        let msg = *r.expect_err("must panic").downcast::<String>().expect("string panic");
        assert!(msg.contains("watchdog"), "{msg}");
        p.unlock(&mut w, 0);
    }

    #[test]
    fn injected_stall_and_delay_resume() {
        use crate::fault::{FaultAction, FaultPlan};
        let plan = Arc::new(
            FaultPlan::new()
                .with_rule(InjectionPoint::PreLockAcquire, 1, FaultAction::Stall { units: 100 })
                .with_rule(InjectionPoint::PreLockAcquire, 2, FaultAction::Delay { units: 10 }),
        );
        let p = CpuPlatform::new(1).with_faults(plan.clone());
        let mut w = CpuWorker::new();
        p.inject(&mut w, InjectionPoint::PreLockAcquire);
        p.inject(&mut w, InjectionPoint::PreLockAcquire);
        p.inject(&mut w, InjectionPoint::PreLockAcquire);
        assert_eq!(plan.fired_count(), 2);
    }

    #[test]
    fn injected_panic_unwinds() {
        use crate::fault::{FaultAction, FaultPlan};
        let plan =
            Arc::new(FaultPlan::new().with_rule(InjectionPoint::MarkedSpin, 1, FaultAction::Panic));
        let p = CpuPlatform::new(1).with_faults(plan);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut w = CpuWorker::new();
            p.inject(&mut w, InjectionPoint::MarkedSpin);
        }));
        assert!(r.is_err());
    }
}
