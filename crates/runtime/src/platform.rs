//! The [`Platform`] trait.

use primitives::PrimitiveCost;

/// Execution environment for the batched heap.
///
/// A platform owns a table of `num_locks()` locks addressed by index —
/// BGPQ maps heap node `i` to lock `i` (root and partial buffer share
/// lock 0, exactly as in the paper). Operations take a `&mut Worker`,
/// the per-thread (or per-simulated-block) execution context.
///
/// # Locking discipline
///
/// `unlock(w, l)` must only be called by the worker that currently holds
/// `l` via `lock`/`try_lock`. The heap code upholds this by construction
/// (hand-over-hand traversal); platforms may treat a violation as a
/// panic.
pub trait Platform: Send + Sync {
    /// Per-thread execution context (e.g. the simulator's agent handle).
    type Worker: Send;

    /// Number of locks in the table.
    fn num_locks(&self) -> usize;

    /// Acquire lock `lock`, blocking (in real or virtual time).
    fn lock(&self, w: &mut Self::Worker, lock: usize);

    /// Try to acquire `lock` without blocking.
    fn try_lock(&self, w: &mut Self::Worker, lock: usize) -> bool;

    /// Release `lock` (caller must hold it).
    fn unlock(&self, w: &mut Self::Worker, lock: usize);

    /// Account the cost of executing a data-parallel primitive. A no-op
    /// on real hardware, a virtual-clock advance in the simulator.
    fn charge(&self, w: &mut Self::Worker, c: PrimitiveCost);

    /// One iteration of a spin-wait (used while waiting for a
    /// collaborating insertion to refill the root, §4.3). Must allow the
    /// awaited event to make progress.
    fn backoff(&self, w: &mut Self::Worker);
}
