//! The [`Platform`] trait.

use crate::fault::InjectionPoint;
use pq_api::ScratchSlot;
use primitives::PrimitiveCost;

/// Why [`Platform::lock_checked`] gave up on an acquisition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockFailure {
    /// Lock index that could not be acquired.
    pub lock: usize,
    /// Human-readable holder/state diagnostic from the platform (e.g.
    /// the CPU watchdog's lock-table dump).
    pub detail: String,
}

/// Execution environment for the batched heap.
///
/// A platform owns a table of `num_locks()` locks addressed by index —
/// BGPQ maps heap node `i` to lock `i` (root and partial buffer share
/// lock 0, exactly as in the paper). Operations take a `&mut Worker`,
/// the per-thread (or per-simulated-block) execution context.
///
/// # Locking discipline
///
/// `unlock(w, l)` must only be called by the worker that currently holds
/// `l` via `lock`/`try_lock`/`lock_checked`. The heap code upholds this
/// by construction (hand-over-hand traversal); platforms may treat a
/// violation as a panic.
///
/// # Failure hooks
///
/// [`Platform::inject`] and [`Platform::lock_checked`] default to no-op
/// and plain blocking respectively, so a platform without fault
/// injection or a watchdog behaves exactly as before. Platforms that
/// carry a [`crate::FaultPlan`] execute injected faults (including
/// panics) inside `inject`; the heap places its calls so that an
/// unwinding worker always knows which locks it holds.
pub trait Platform: Send + Sync {
    /// Per-thread execution context (e.g. the simulator's agent handle).
    type Worker: Send;

    /// Number of locks in the table.
    fn num_locks(&self) -> usize;

    /// The worker's scratch parking spot (see [`ScratchSlot`]). Queue
    /// hot paths take their per-worker arena out of this slot at
    /// operation entry and put it back at exit, so the steady state
    /// performs no heap allocation. Workers own their slot exclusively —
    /// no synchronization is involved.
    fn scratch_slot<'a>(&self, w: &'a mut Self::Worker) -> &'a mut ScratchSlot;

    /// Acquire lock `lock`, blocking (in real or virtual time).
    fn lock(&self, w: &mut Self::Worker, lock: usize);

    /// Try to acquire `lock` without blocking.
    fn try_lock(&self, w: &mut Self::Worker, lock: usize) -> bool;

    /// Release `lock` (caller must hold it).
    fn unlock(&self, w: &mut Self::Worker, lock: usize);

    /// Account the cost of executing a data-parallel primitive. A no-op
    /// on real hardware, a virtual-clock advance in the simulator.
    fn charge(&self, w: &mut Self::Worker, c: PrimitiveCost);

    /// One iteration of a spin-wait (used while waiting for a
    /// collaborating insertion to refill the root, §4.3). Must allow the
    /// awaited event to make progress.
    fn backoff(&self, w: &mut Self::Worker);

    /// A deliberately expensive backoff for spins that have escalated
    /// past their cheap phase (the waited-on worker looks stalled):
    /// sleep on real hardware, a large clock jump in the simulator.
    /// Defaults to [`Platform::backoff`].
    fn backoff_long(&self, w: &mut Self::Worker) {
        self.backoff(w);
    }

    /// Fault-injection hook: called by the heap at each named point of
    /// its critical sections. Platforms carrying a fault plan stall,
    /// delay, or panic the worker here; the default is a no-op.
    fn inject(&self, _w: &mut Self::Worker, _point: InjectionPoint) {}

    /// Access-tagging hook for *lock-free* reads/writes of state
    /// co-located with lock `lock` (BGPQ publishes per-node state words
    /// and the root-min hint outside the node locks). Used by schedule
    /// exploration to build the independence relation for partial-order
    /// reduction; a no-op everywhere else. Lock-*protected* accesses
    /// need no tagging — mutual exclusion already orders them and the
    /// platform's lock ops are tagged by the scheduler.
    fn touch(&self, _w: &mut Self::Worker, _lock: usize, _write: bool) {}

    /// Like [`Platform::touch`] for a queue-wide access (the whole lock
    /// arena): salvage walks, fault-plan bookkeeping — anything that
    /// conflicts with every operation on this queue but not with other
    /// queues.
    fn touch_domain(&self, _w: &mut Self::Worker, _write: bool) {}

    /// Like [`Platform::touch`] for cross-queue coordination state
    /// shared by a multi-queue front (router breakers and op counters,
    /// combiner rings): conflicts with every other `touch_shared`, on
    /// any platform, but not with per-queue traffic.
    fn touch_shared(&self, _w: &mut Self::Worker, _write: bool) {}

    /// Acquire `lock` with failure detection, when the platform has
    /// any: a watchdog-equipped platform returns [`LockFailure`] instead
    /// of blocking forever on a dead holder. The default is the plain
    /// blocking [`Platform::lock`] (which can still rely on external
    /// detection, e.g. the simulator's deadlock detector).
    fn lock_checked(&self, w: &mut Self::Worker, lock: usize) -> Result<(), LockFailure> {
        self.lock(w, lock);
        Ok(())
    }
}
