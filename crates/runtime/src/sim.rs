//! Virtual-time platform backed by the `gpu-sim` scheduler.

use crate::fault::{FaultAction, FaultPlan, InjectionPoint};
use crate::platform::Platform;
use gpu_sim::{LockId, Scheduler, SimWorker};
use pq_api::ScratchSlot;
use primitives::{CostModel, PrimitiveCost};
use std::sync::Arc;

/// A platform whose locks live in a `gpu-sim` scheduler's lock arena and
/// whose primitive costs advance the simulated block's virtual clock.
///
/// Create one per kernel launch (inside the `launch` setup closure) and
/// share it with every block; each block passes its own
/// [`SimWorker`] — obtained from `BlockCtx::worker()` — as the platform
/// worker.
///
/// A [`FaultPlan`] attached via [`SimPlatform::with_faults`] executes
/// against the simulator's deterministic schedule, so a rule like "panic
/// on the 7th `MidInsertHeapify`" faults the same agent at the same
/// virtual time on every run with the same seed — stalls and delays are
/// virtual-clock advances, and a schedule-fuzzing seed (`GpuConfig`'s
/// `fuzz_seed`) picks which agent reaches the nth hit first.
/// Footprint address for cross-queue front coordination state (all
/// `touch_shared` calls map here, on every platform instance): below
/// `gpu_sim::AGENT_BASE`, far above any realistic lock arena.
const SHARED_TAG: u64 = 1 << 62;

pub struct SimPlatform {
    base_lock: LockId,
    num_locks: usize,
    cost: CostModel,
    block_dim: u32,
    faults: Option<Arc<FaultPlan>>,
}

impl SimPlatform {
    /// Allocate `n` locks in `sched`'s arena for blocks of `block_dim`
    /// threads costed by `cost`.
    pub fn new(sched: &Arc<Scheduler>, n: usize, cost: CostModel, block_dim: u32) -> Self {
        assert!(n >= 1, "need at least one lock");
        let base_lock = sched.create_locks(n);
        Self { base_lock, num_locks: n, cost, block_dim, faults: None }
    }

    /// Attach a fault-injection plan (crash drills at exact virtual
    /// times).
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The cost model used for charging.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Simulated threads per block.
    pub fn block_dim(&self) -> u32 {
        self.block_dim
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }
}

impl Platform for SimPlatform {
    type Worker = SimWorker;

    fn num_locks(&self) -> usize {
        self.num_locks
    }

    #[inline]
    fn scratch_slot<'a>(&self, w: &'a mut SimWorker) -> &'a mut ScratchSlot {
        w.scratch_slot()
    }

    fn lock(&self, w: &mut SimWorker, lock: usize) {
        debug_assert!(lock < self.num_locks);
        w.lock(self.base_lock + lock, self.cost.c_atomic);
    }

    fn try_lock(&self, w: &mut SimWorker, lock: usize) -> bool {
        debug_assert!(lock < self.num_locks);
        w.try_lock(self.base_lock + lock, self.cost.c_atomic)
    }

    fn unlock(&self, w: &mut SimWorker, lock: usize) {
        debug_assert!(lock < self.num_locks);
        w.unlock(self.base_lock + lock, self.cost.c_atomic);
    }

    fn charge(&self, w: &mut SimWorker, c: PrimitiveCost) {
        w.advance(self.cost.cycles(c, self.block_dim));
    }

    fn backoff(&self, w: &mut SimWorker) {
        // Spin-flavored yield: under a schedule-exploration controller
        // this marks switching away as free (the agent is only polling).
        w.spin(self.cost.c_spin);
    }

    fn backoff_long(&self, w: &mut SimWorker) {
        // An escalated spin models a sleeping wait: one big clock jump
        // instead of many cheap ones, letting the waited-on agent run.
        w.spin(self.cost.c_spin * 64);
    }

    fn touch(&self, w: &mut SimWorker, lock: usize, write: bool) {
        debug_assert!(lock < self.num_locks);
        let addr = (self.base_lock + lock) as u64;
        w.touch(addr, addr, write);
    }

    fn touch_domain(&self, w: &mut SimWorker, write: bool) {
        w.touch(self.base_lock as u64, (self.base_lock + self.num_locks - 1) as u64, write);
    }

    fn touch_shared(&self, w: &mut SimWorker, write: bool) {
        w.touch(SHARED_TAG, SHARED_TAG, write);
    }

    fn inject(&self, w: &mut SimWorker, point: InjectionPoint) {
        let Some(plan) = self.faults.as_ref() else { return };
        // The plan's per-point hit counters are shared state: every
        // injection on this platform races every other one.
        self.touch_domain(w, true);
        match plan.check(point) {
            None => {}
            Some(FaultAction::Panic) => {
                panic!("injected fault: panic at {point:?} (vtime {})", w.now())
            }
            // Both are virtual-clock advances: a Stall is long enough to
            // trip bounds, a Delay is a schedule wobble under them.
            Some(FaultAction::Stall { units }) | Some(FaultAction::Delay { units }) => {
                w.advance(units);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{launch, GpuConfig};

    #[test]
    fn sim_platform_serializes_critical_sections_in_virtual_time() {
        let cfg = GpuConfig::new(4, 128);
        let cost = cfg.cost;
        let (report, _) = launch(
            cfg,
            |sched| SimPlatform::new(sched, 1, cost, 128),
            |ctx, platform: &SimPlatform| {
                let w = ctx.worker();
                platform.lock(w, 0);
                platform.charge(w, PrimitiveCost::Sort { n: 1024 });
                platform.unlock(w, 0);
            },
        );
        let one_sort = cost.bitonic_sort_cycles(1024, 128);
        assert!(
            report.makespan_cycles >= 4 * one_sort,
            "4 contended sorts must serialize: {} < {}",
            report.makespan_cycles,
            4 * one_sort
        );
    }

    #[test]
    fn uncontended_blocks_overlap() {
        let cfg = GpuConfig::new(4, 128);
        let cost = cfg.cost;
        let (report, _) = launch(
            cfg,
            |sched| SimPlatform::new(sched, 4, cost, 128),
            |ctx, platform: &SimPlatform| {
                let id = ctx.block_id();
                let w = ctx.worker();
                platform.lock(w, id);
                platform.charge(w, PrimitiveCost::Sort { n: 1024 });
                platform.unlock(w, id);
            },
        );
        let one_sort = cost.bitonic_sort_cycles(1024, 128);
        assert!(
            report.makespan_cycles < 2 * one_sort + 10_000,
            "independent sorts must overlap: {}",
            report.makespan_cycles
        );
    }

    #[test]
    fn charge_advances_virtual_time_by_model_cost() {
        let cfg = GpuConfig::new(1, 256);
        let cost = cfg.cost;
        let (report, _) = launch(
            cfg,
            |sched| SimPlatform::new(sched, 1, cost, 256),
            |ctx, platform: &SimPlatform| {
                let w = ctx.worker();
                platform.charge(w, PrimitiveCost::Merge { n: 2048 });
            },
        );
        assert_eq!(report.makespan_cycles, cost.c_dispatch + cost.merge_cycles(2048, 256));
    }
}
