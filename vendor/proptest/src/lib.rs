//! Offline stand-in for the `proptest` crate (1.x API subset).
//!
//! Vendored so the workspace builds hermetically (no crates.io access);
//! wired up through `[patch.crates-io]` — see DESIGN.md §6. Covers the
//! surface the workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map` / `prop_flat_map` / `boxed`, plus
//!   strategy impls for integer and `f64` ranges, tuples (arity ≤ 4),
//!   and [`Just`];
//! * [`any`] for the primitive types and [`sample::Index`];
//! * [`collection::vec`] with `usize` / `Range` / `RangeInclusive`
//!   size specs;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`], [`prop_assume!`] macros
//!   and [`ProptestConfig::with_cases`].
//!
//! Deliberate simplifications versus the real crate: no shrinking (a
//! failing case panics with the generated input's `Debug` repr so it
//! can be minimized by hand), no persistence files, and deterministic
//! per-test seeding (derived from the test's module path) instead of
//! OS entropy — reruns of a failing test reproduce the same inputs.

use std::fmt::Debug;

/// Deterministic generator handed to [`Strategy::generate`]
/// (SplitMix64-seeded xorshift64*; quality is ample for test inputs).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        // SplitMix64 expansion so consecutive seeds give unrelated streams.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self { state: (z ^ (z >> 31)) | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, span)`; `span` must be non-zero.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(self) }
    }
}

/// Type-erased strategy (what [`prop_oneof!`] arms become).
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical whole-domain strategy (subset of the real
/// crate's `Arbitrary`).
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T` (`any::<u32>()`,
/// `any::<sample::Index>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

pub mod sample {
    //! Stand-in for `proptest::sample`.

    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known inside the
    /// test body: draw one with `any::<Index>()`, then project it onto
    /// a concrete length with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(usize);

    impl Index {
        /// Map this abstract index onto `[0, len)`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

pub mod collection {
    //! Stand-in for `proptest::collection`.

    use super::{Strategy, TestRng};

    /// Inclusive element-count bounds for [`vec()`](fn@vec).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy returned by [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `Vec` strategy: each element drawn from `elem`, length drawn
    /// from `size` (a `usize`, `a..b`, or `a..=b`).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate's default; individual tests lower it via
        // `with_cases` where a case is expensive.
        Self { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure — the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the input — draw another.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Drive one property test: draw inputs until `cfg.cases` cases are
/// accepted, panicking (with the input's `Debug` repr) on the first
/// failure. Called by the [`proptest!`] expansion, not directly.
pub fn run_proptest<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, TestCaseResult),
{
    // FNV-1a over the fully qualified test name: per-test deterministic
    // streams that survive adding/removing other tests.
    let mut seed = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01B3);
    }

    let mut accepted = 0u32;
    let mut attempt = 0u64;
    let max_attempts = (cfg.cases as u64) * 10 + 100;
    while accepted < cfg.cases {
        attempt += 1;
        assert!(
            attempt <= max_attempts,
            "{name}: gave up after {attempt} attempts \
             ({accepted}/{} accepted) — prop_assume! rejects too much",
            cfg.cases
        );
        let mut rng = TestRng::from_seed(seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let (repr, result) = case(&mut rng);
        match result {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed at case {attempt}: {msg}\n  input: {repr}")
            }
        }
    }
}

/// Define property tests. Supports the real crate's common form:
/// optional `#![proptest_config(expr)]`, then `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident
        ($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::run_proptest(
                    &__cfg,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__rng| {
                        let __vals = ($($crate::Strategy::generate(&($strat), __rng),)+);
                        let __repr = ::std::format!("{:?}", __vals);
                        #[allow(unused_mut)]
                        let ($($pat,)+) = __vals;
                        #[allow(clippy::redundant_closure_call)]
                        let __res: $crate::TestCaseResult = (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                        (__repr, __res)
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert inside a proptest body (fails the case instead of panicking,
/// so the runner can report the generated input).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+),
                    __l,
                    __r
                );
            }
        }
    };
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                );
            }
        }
    };
}

/// Reject the current case (draw a fresh input) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

pub mod prelude {
    //! `use proptest::prelude::*;` — everything a test module needs.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    pub mod prop {
        //! Mirror of the real prelude's `prop` module path alias
        //! (`prop::sample::Index`, `prop::collection::vec`, …).
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_sizes_respected() {
        let strat =
            crate::collection::vec((1u32..5, 10usize..=12), 3..6).prop_map(|v| v.into_iter());
        crate::run_proptest(&ProptestConfig::with_cases(64), "unit::ranges", |rng| {
            let it = strat.generate(rng);
            let v: Vec<(u32, usize)> = it.collect();
            assert!((3..6).contains(&v.len()));
            for (a, b) in &v {
                assert!((1..5).contains(a));
                assert!((10..=12).contains(b));
            }
            ("ok".into(), Ok(()))
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn oneof_and_flat_map_compose(
            v in (0u32..=4).prop_flat_map(|e| {
                crate::collection::vec(prop_oneof![Just(0u32), 1u32..100], 1usize << e)
            }),
            pick in any::<prop::sample::Index>(),
        ) {
            prop_assert!(v.len().is_power_of_two());
            let x = v[pick.index(v.len())];
            prop_assert!(x == 0 || (1..100).contains(&x));
        }

        #[test]
        fn assume_rejects_and_retries(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_input() {
        crate::run_proptest(&ProptestConfig::with_cases(8), "unit::fails", |rng| {
            let n = (0u32..10).generate(rng);
            let body = || -> TestCaseResult {
                prop_assert!(n > 100, "n={n} not > 100");
                Ok(())
            };
            (format!("{n:?}"), body())
        });
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = Vec::new();
        crate::run_proptest(&ProptestConfig::with_cases(16), "unit::det", |rng| {
            a.push(rng.next_u64());
            ("".into(), Ok(()))
        });
        let mut b = Vec::new();
        crate::run_proptest(&ProptestConfig::with_cases(16), "unit::det", |rng| {
            b.push(rng.next_u64());
            ("".into(), Ok(()))
        });
        assert_eq!(a, b);
    }
}
