//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the handful of external dependencies are vendored as
//! API-compatible shims wired up through `[patch.crates-io]` (see
//! DESIGN.md §6). This crate covers exactly the surface the workspace
//! uses:
//!
//! * [`Rng`]: `gen`, `gen_range` (integer `a..b` / `a..=b` and `f64`
//!   ranges), `gen_bool`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] and [`rngs::SmallRng`].
//!
//! The generators are xoshiro256++ (for `StdRng`) and xorshift64*
//! (for `SmallRng`) seeded via SplitMix64 — deterministic per seed,
//! high-quality enough for test-input generation and benchmarks, but
//! **not** the same streams as the real `rand` crate and not
//! cryptographic. Code must not depend on exact values drawn from a
//! given seed, only on per-seed determinism (which the workspace's
//! determinism tests rely on).

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of a standard-distribution type (`u8..u64`,
    /// `usize`, `bool`, `f64`).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (`a..b` or `a..=b`). Panics on an
    /// empty range, like the real crate.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        // 53 random bits -> uniform in [0,1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seed-construction subset of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`] (stand-in for `Standard:
/// Distribution<T>`).
pub trait StandardSample {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce_u64(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + (reduce_u64(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + reduce_u64(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + reduce_u64(rng.next_u64(), span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
}

/// Map a uniform `u64` onto `[0, span)` by 128-bit widening multiply
/// (Lemire reduction without the rejection step; bias ≤ 2⁻⁶⁴·span,
/// irrelevant for test-input generation).
#[inline]
fn reduce_u64(x: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((x as u128 * span as u128) >> 64) as u64
}

/// SplitMix64 — used to expand seeds into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: xoshiro256++ (not ChaCha12 —
    /// different streams than the real crate, same per-seed
    /// determinism).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Stand-in for `rand::rngs::SmallRng`: xorshift64*.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = splitmix64(&mut sm) | 1; // never the all-zero state
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let mut x = self.s;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.s = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u32> = (0..32).map(|_| a.gen()).collect();
        let vb: Vec<u32> = (0..32).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u32> = (0..32).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..4096 {
            let x = r.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(1usize..=4);
            assert!((1..=4).contains(&y));
            let z = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&z));
            let f = r.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 4 values should appear: {seen:?}");
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut r = StdRng::seed_from_u64(5);
        assert!((0..64).all(|_| r.gen_bool(1.0)));
        assert!((0..64).all(|_| !r.gen_bool(0.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "p=0.3 rate off: {hits}/10000");
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(0);
        let _ = r.gen_range(5u32..5);
    }
}
