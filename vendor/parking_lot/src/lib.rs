//! Offline stand-in for the `parking_lot` crate (0.12 API subset).
//!
//! Vendored so the workspace builds hermetically (no crates.io access);
//! wired up through `[patch.crates-io]` — see DESIGN.md §6. Covers
//! exactly the surface the workspace uses:
//!
//! * [`Mutex`] / [`MutexGuard`] — `new` (const), `lock`, `try_lock`,
//!   `into_inner`;
//! * [`RwLock`] / [`RwLockWriteGuard`] — `new`, `read`, `write`,
//!   `into_inner`;
//! * [`Condvar`] — `new`, `wait(&mut MutexGuard)`, `notify_one`,
//!   `notify_all`;
//! * [`RawMutex`] implementing [`lock_api::RawMutex`] — the lock-table
//!   primitive behind `CpuPlatform`.
//!
//! Semantics: the guards wrap `std::sync` primitives with poisoning
//! swallowed (parking_lot has no poisoning — a panic while holding a
//! lock simply releases it here too, via `PoisonError::into_inner`).
//! No fairness/eventual-fairness guarantees are reproduced; none of
//! the workspace's code depends on them.

use std::sync::PoisonError;

/// Mutual exclusion (std-backed, non-poisoning).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    #[inline]
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            // `Some` until the guard drops or `Condvar::wait` briefly
            // takes it to hand the std guard back to std's wait.
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
            mutex: &self.inner,
        }
    }

    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g), mutex: &self.inner }),
            Err(std::sync::TryLockError::WouldBlock) => None,
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { guard: Some(p.into_inner()), mutex: &self.inner })
            }
        }
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
    mutex: &'a std::sync::Mutex<T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.guard.as_deref().expect("guard taken during Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_deref_mut().expect("guard taken during Condvar::wait")
    }
}

/// Condition variable compatible with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    #[inline]
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    /// Atomically release the guard's mutex and block until notified;
    /// the mutex is re-acquired before returning (parking_lot signature:
    /// `&mut MutexGuard`, unlike std which consumes and returns it).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard taken during Condvar::wait");
        let std_guard = self.inner.wait(std_guard).unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(std_guard);
        let _ = guard.mutex; // field exists for future timed-wait needs
    }

    #[inline]
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        // std does not report whether a thread was woken; callers in
        // this workspace ignore the return value.
        false
    }

    #[inline]
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

/// Reader-writer lock (std-backed, non-poisoning).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    #[inline]
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { guard: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { guard: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }

    #[inline]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { guard: g }),
            Err(std::sync::TryLockError::WouldBlock) => None,
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(RwLockWriteGuard { guard: p.into_inner() })
            }
        }
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

pub mod lock_api {
    //! Minimal stand-in for the `lock_api` facade `parking_lot`
    //! re-exports: just the [`RawMutex`] trait the workspace's
    //! `CpuPlatform` is written against.

    /// A raw (unowned, manually released) mutual-exclusion primitive.
    ///
    /// # Safety contract
    ///
    /// `unlock` may only be called by a caller that currently holds the
    /// lock; implementations need not detect misuse.
    pub trait RawMutex {
        /// Unlocked initial value, usable in `const`/static contexts.
        const INIT: Self;

        fn lock(&self);
        fn try_lock(&self) -> bool;

        /// # Safety
        ///
        /// The caller must hold the lock.
        unsafe fn unlock(&self);
    }
}

/// Raw test-and-test-and-set spinlock (yields while contended) backing
/// `CpuPlatform`'s lock table.
pub struct RawMutex {
    locked: std::sync::atomic::AtomicBool,
}

impl lock_api::RawMutex for RawMutex {
    const INIT: RawMutex = RawMutex { locked: std::sync::atomic::AtomicBool::new(false) };

    #[inline]
    fn lock(&self) {
        use std::sync::atomic::Ordering;
        loop {
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
            // Spin on a relaxed read until the lock looks free, yielding
            // so single-core hosts make progress.
            while self.locked.load(Ordering::Relaxed) {
                std::thread::yield_now();
            }
        }
    }

    #[inline]
    fn try_lock(&self) -> bool {
        use std::sync::atomic::Ordering;
        self.locked.compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed).is_ok()
    }

    #[inline]
    unsafe fn unlock(&self) {
        self.locked.store(false, std::sync::atomic::Ordering::Release);
    }
}

impl std::fmt::Debug for RawMutex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RawMutex")
    }
}

#[cfg(test)]
mod tests {
    use super::lock_api::RawMutex as _;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn mutex_excludes() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut g = m.lock();
                while !*g {
                    cv.wait(&mut g);
                }
            });
            s.spawn(|| {
                *m.lock() = true;
                cv.notify_all();
            });
        });
        assert!(*m.lock());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn raw_mutex_excludes() {
        let raw = RawMutex::INIT;
        let inside = AtomicUsize::new(0);
        let max = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..500 {
                        raw.lock();
                        let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                        max.fetch_max(now, Ordering::SeqCst);
                        inside.fetch_sub(1, Ordering::SeqCst);
                        unsafe { raw.unlock() };
                    }
                });
            }
        });
        assert_eq!(max.load(Ordering::SeqCst), 1);
        assert!(raw.try_lock());
        assert!(!raw.try_lock());
        unsafe { raw.unlock() };
    }
}
